#include "check/crash_schedule.hh"

#include <cctype>
#include <cstdlib>
#include <sstream>

namespace hoopnvm
{

namespace
{

struct SchemeToken
{
    Scheme scheme;
    const char *token;
};

constexpr SchemeToken kSchemeTokens[] = {
    {Scheme::Native, "native"}, {Scheme::Hoop, "hoop"},
    {Scheme::OptRedo, "redo"},  {Scheme::OptUndo, "undo"},
    {Scheme::Osp, "osp"},       {Scheme::Lsm, "lsm"},
    {Scheme::Lad, "lad"},
};

/**
 * Minimal JSON reader for the schedule grammar: objects, arrays,
 * strings (no escapes beyond \" and \\), numbers, booleans. Enough to
 * round-trip toJson() output without an external dependency.
 */
class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : s_(text) {}

    bool fail(const std::string &msg)
    {
        if (err_.empty())
            err_ = msg + " near offset " + std::to_string(pos_);
        return false;
    }

    const std::string &error() const { return err_; }

    void skipWs()
    {
        while (pos_ < s_.size() &&
               std::isspace(static_cast<unsigned char>(s_[pos_])))
            ++pos_;
    }

    bool consume(char c)
    {
        skipWs();
        if (pos_ >= s_.size() || s_[pos_] != c)
            return fail(std::string("expected '") + c + "'");
        ++pos_;
        return true;
    }

    bool peekIs(char c)
    {
        skipWs();
        return pos_ < s_.size() && s_[pos_] == c;
    }

    bool parseString(std::string *out)
    {
        if (!consume('"'))
            return false;
        out->clear();
        while (pos_ < s_.size() && s_[pos_] != '"') {
            if (s_[pos_] == '\\' && pos_ + 1 < s_.size())
                ++pos_;
            out->push_back(s_[pos_++]);
        }
        if (pos_ >= s_.size())
            return fail("unterminated string");
        ++pos_;
        return true;
    }

    bool parseNumber(double *out)
    {
        skipWs();
        const char *start = s_.c_str() + pos_;
        char *end = nullptr;
        *out = std::strtod(start, &end);
        if (end == start)
            return fail("expected number");
        pos_ += static_cast<std::size_t>(end - start);
        return true;
    }

    bool parseBool(bool *out)
    {
        skipWs();
        if (s_.compare(pos_, 4, "true") == 0) {
            *out = true;
            pos_ += 4;
            return true;
        }
        if (s_.compare(pos_, 5, "false") == 0) {
            *out = false;
            pos_ += 5;
            return true;
        }
        return fail("expected boolean");
    }

    /**
     * Walk the members of an object, invoking @p member for each key;
     * the callback must consume the value and return success.
     */
    template <typename Fn>
    bool parseObject(Fn member)
    {
        if (!consume('{'))
            return false;
        if (peekIs('}'))
            return consume('}');
        while (true) {
            std::string key;
            if (!parseString(&key) || !consume(':'))
                return false;
            if (!member(key))
                return fail("bad value for key \"" + key + "\"");
            if (peekIs(',')) {
                consume(',');
                continue;
            }
            return consume('}');
        }
    }

  private:
    const std::string &s_;
    std::size_t pos_ = 0;
    std::string err_;
};

} // namespace

const char *
schemeToken(Scheme s)
{
    for (const auto &t : kSchemeTokens) {
        if (t.scheme == s)
            return t.token;
    }
    return "unknown";
}

bool
schemeFromToken(const std::string &token, Scheme *out)
{
    for (const auto &t : kSchemeTokens) {
        if (token == t.token) {
            *out = t.scheme;
            return true;
        }
    }
    return false;
}

bool
crashPointKindFromToken(const std::string &token, CrashPointKind *out)
{
    for (unsigned k = 0; k < kNumCrashPointKinds; ++k) {
        if (token == crashPointKindToken(static_cast<CrashPointKind>(k))) {
            *out = static_cast<CrashPointKind>(k);
            return true;
        }
    }
    return false;
}

std::string
CrashSchedule::toJson() const
{
    std::ostringstream os;
    os << "{\n";
    os << "  \"scheme\": \"" << schemeToken(scheme) << "\",\n";
    os << "  \"workload\": \"" << workload << "\",\n";
    os << "  \"seed\": " << seed << ",\n";
    os << "  \"num_cores\": " << numCores << ",\n";
    os << "  \"warmup_tx\": " << warmupTx << ",\n";
    os << "  \"run_tx\": " << runTx << ",\n";
    os << "  \"recover_threads\": " << recoverThreads << ",\n";
    os << "  \"torn_writes\": " << (tornWrites ? "true" : "false")
       << ",\n";
    os << "  \"media_fault_prob\": " << mediaFaultProb << ",\n";
    os << "  \"runtime_fault_prob\": " << runtimeFaultProb << ",\n";
    os << "  \"break_commit_fence\": "
       << (breakCommitFence ? "true" : "false") << ",\n";
    os << "  \"ordering\": " << (ordering ? "true" : "false") << ",\n";
    os << "  \"steps\": [";
    for (std::size_t i = 0; i < steps.size(); ++i) {
        os << (i ? ",\n    " : "\n    ");
        os << "{\"kind\": \"" << crashPointKindToken(steps[i].kind)
           << "\", \"countdown\": " << steps[i].countdown
           << ", \"recovery_countdown\": " << steps[i].recoveryCountdown
           << "}";
    }
    os << (steps.empty() ? "]\n" : "\n  ]\n");
    os << "}\n";
    return os.str();
}

bool
CrashSchedule::fromJson(const std::string &text, CrashSchedule *out,
                        std::string *err)
{
    *out = CrashSchedule{};
    JsonParser p(text);
    std::string str;
    double num = 0;

    const bool ok = p.parseObject([&](const std::string &key) {
        if (key == "scheme") {
            return p.parseString(&str) &&
                   (schemeFromToken(str, &out->scheme) ||
                    p.fail("unknown scheme \"" + str + "\""));
        }
        if (key == "workload")
            return p.parseString(&out->workload);
        if (key == "seed") {
            if (!p.parseNumber(&num))
                return false;
            out->seed = static_cast<std::uint64_t>(num);
            return true;
        }
        if (key == "num_cores") {
            if (!p.parseNumber(&num))
                return false;
            out->numCores = static_cast<unsigned>(num);
            return true;
        }
        if (key == "warmup_tx") {
            if (!p.parseNumber(&num))
                return false;
            out->warmupTx = static_cast<std::uint64_t>(num);
            return true;
        }
        if (key == "run_tx") {
            if (!p.parseNumber(&num))
                return false;
            out->runTx = static_cast<std::uint64_t>(num);
            return true;
        }
        if (key == "recover_threads") {
            if (!p.parseNumber(&num))
                return false;
            out->recoverThreads = static_cast<unsigned>(num);
            return true;
        }
        if (key == "torn_writes")
            return p.parseBool(&out->tornWrites);
        if (key == "media_fault_prob")
            return p.parseNumber(&out->mediaFaultProb);
        if (key == "runtime_fault_prob")
            return p.parseNumber(&out->runtimeFaultProb);
        if (key == "break_commit_fence")
            return p.parseBool(&out->breakCommitFence);
        if (key == "ordering")
            return p.parseBool(&out->ordering);
        if (key == "steps") {
            if (!p.consume('['))
                return false;
            if (p.peekIs(']'))
                return p.consume(']');
            while (true) {
                CrashStep step;
                const bool step_ok =
                    p.parseObject([&](const std::string &sk) {
                        if (sk == "kind") {
                            return p.parseString(&str) &&
                                   (crashPointKindFromToken(str,
                                                            &step.kind) ||
                                    p.fail("unknown crash-point kind \"" +
                                           str + "\""));
                        }
                        if (sk == "countdown") {
                            if (!p.parseNumber(&num))
                                return false;
                            step.countdown =
                                static_cast<std::uint64_t>(num);
                            return true;
                        }
                        if (sk == "recovery_countdown") {
                            if (!p.parseNumber(&num))
                                return false;
                            step.recoveryCountdown =
                                static_cast<std::uint64_t>(num);
                            return true;
                        }
                        return p.fail("unknown step key \"" + sk + "\"");
                    });
                if (!step_ok)
                    return false;
                out->steps.push_back(step);
                if (p.peekIs(',')) {
                    p.consume(',');
                    continue;
                }
                return p.consume(']');
            }
        }
        return p.fail("unknown key \"" + key + "\"");
    });

    if (!ok && err)
        *err = p.error();
    return ok;
}

} // namespace hoopnvm
