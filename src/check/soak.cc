#include "check/soak.hh"

#include <algorithm>
#include <memory>

#include "analysis/order_harness.hh"
#include "check/spec_json.hh"
#include "common/errors.hh"
#include "common/json.hh"
#include "fleet/client_policy.hh"
#include "sim/system.hh"
#include "workloads/registry.hh"

namespace hoopnvm
{

void
installRuntimeFaults(System &sys, const SystemConfig &cfg, double prob,
                     unsigned salt)
{
    // Escalation ramps multiply without bound; a saturated phase just
    // means every free word is faulty.
    prob = std::min(prob, 1.0);
    FaultModel &fm = sys.nvm().faults();
    std::size_t i = salt;
    for (const auto &range : sys.controller().freeMediaRanges()) {
        const MediaFaultKind kind = (i & 1)
                                        ? MediaFaultKind::StuckAtOne
                                        : MediaFaultKind::StuckAtZero;
        // Stripe the extent, never more than a handful of fault ranges
        // per extent (classifying a word walks the range list), and
        // lead with the uncorrectable stripe: allocators and the
        // scrubber consume extents front-first, so damage at the front
        // is what short check windows actually reach.
        const Addr len = range.second - range.first;
        const Addr stripe =
            std::max<Addr>(8192, (len / 8 + 7) / 8 * 8);
        unsigned s = 0;
        for (Addr lo = range.first; lo < range.second;
             lo += stripe, ++s) {
            const Addr hi = std::min(range.second, lo + stripe);
            fm.addMediaFault(lo, hi, kind, prob,
                             (s & 1) ? 1 : 3);
        }
        ++i;
    }
    fm.addMediaFault(0, cfg.homeBytes, MediaFaultKind::BitFlip,
                     prob * 0.5, 2);
}

std::string
SoakSpec::toJson() const
{
    std::string out = "{\n";
    auto field = [&out](const char *key, const std::string &val,
                        bool last = false) {
        // lint: raw-json-ok (keys are compile-time literals; string values arrive jsonQuote()d)
        out += std::string("  \"") + key + "\": " + val +
               (last ? "\n" : ",\n");
    };
    field("scheme", jsonQuote(schemeToken(scheme)));
    field("workload", jsonQuote(workload));
    field("seed", std::to_string(seed));
    field("num_cores", std::to_string(numCores));
    field("warmup_tx", std::to_string(warmupTx));
    field("phases", std::to_string(phases));
    field("tx_per_phase", std::to_string(txPerPhase));
    field("fault_prob", std::to_string(faultProb));
    field("escalation", std::to_string(escalation));
    field("recover_threads", std::to_string(recoverThreads), true);
    out += "}\n";
    return out;
}

bool
SoakSpec::fromJson(const std::string &text, SoakSpec *out,
                   std::string *err)
{
    *out = SoakSpec{};
    SpecParser p(text);
    std::string str;
    double num = 0;

    auto u64 = [&](std::uint64_t *dst) {
        if (!p.parseNumber(&num))
            return false;
        *dst = static_cast<std::uint64_t>(num);
        return true;
    };
    auto u32 = [&](unsigned *dst) {
        if (!p.parseNumber(&num))
            return false;
        *dst = static_cast<unsigned>(num);
        return true;
    };

    const bool ok = p.parseObject([&](const std::string &key) {
        if (key == "scheme") {
            return p.parseString(&str) &&
                   (schemeFromToken(str, &out->scheme) ||
                    p.fail("unknown scheme \"" + str + "\""));
        }
        if (key == "workload")
            return p.parseString(&out->workload);
        if (key == "seed")
            return u64(&out->seed);
        if (key == "num_cores")
            return u32(&out->numCores);
        if (key == "warmup_tx")
            return u64(&out->warmupTx);
        if (key == "phases")
            return u32(&out->phases);
        if (key == "tx_per_phase")
            return u64(&out->txPerPhase);
        if (key == "fault_prob")
            return p.parseNumber(&out->faultProb);
        if (key == "escalation")
            return p.parseNumber(&out->escalation);
        if (key == "recover_threads")
            return u32(&out->recoverThreads);
        return p.fail("unknown key \"" + key + "\"");
    });

    if (!ok && err)
        *err = p.error();
    return ok;
}

SoakResult
runSoak(const SoakSpec &spec, const SoakProgress &progress)
{
    SoakResult res;

    SystemConfig cfg = smallCheckConfig(spec.numCores, spec.seed);
    cfg.ft.enabled = true;
    System sys(cfg, spec.scheme);
    sys.nvm().faults().setSeed(spec.seed ^ 0x7ea55eedULL);

    WorkloadParams params;
    params.valueBytes = 64;
    params.scale = 128;
    auto factory = makeWorkload(spec.workload, params);
    std::vector<std::unique_ptr<Workload>> wls;
    for (unsigned c = 0; c < cfg.numCores; ++c) {
        wls.push_back(factory(sys, c));
        wls.back()->setup();
    }

    const std::string cell =
        std::string(schemeToken(spec.scheme)) + "/" + spec.workload;

    // Same post-recovery oracle as the crash explorer: strict verify
    // with the pending-shadow ambiguity resolved both ways, then the
    // workload's structural invariants. Runtime faults never touch
    // occupied cells, so committed data must always survive.
    auto oracle = [&](const std::string &when) -> bool {
        for (unsigned c = 0; c < cfg.numCores; ++c) {
            bool ok = wls[c]->verify();
            if (!ok && wls[c]->hasPendingShadow()) {
                wls[c]->applyPendingShadow();
                ok = wls[c]->verify();
            } else {
                wls[c]->dropPendingShadow();
            }
            if (!ok) {
                res.violated = true;
                res.detail = cell + " core " + std::to_string(c) +
                             ": committed state lost or phantom data "
                             "surfaced (" + when + ")";
                return false;
            }
            std::string why;
            if (!wls[c]->verifyStructure(&why)) {
                res.violated = true;
                res.detail = cell + " core " + std::to_string(c) +
                             ": structural invariant broken (" + when +
                             "): " + why;
                return false;
            }
        }
        return true;
    };

    auto sampleGauges = [&]() {
        const ControllerGauges g = sys.controller().gauges();
        res.retiredUnits = g.retiredUnits;
        res.correctedWords = g.correctedWords;
        res.degradedFraction = g.degradedFraction;
        res.readRetries = sys.nvm().readRetries();
        res.uncorrectableReads = sys.nvm().uncorrectableReads();
    };

    std::uint64_t txi = 0;
    for (; txi < spec.warmupTx; ++txi) {
        for (unsigned c = 0; c < cfg.numCores; ++c)
            wls[c]->runTransaction(txi);
        sys.maintenance();
    }

    double prob = spec.faultProb;
    for (unsigned phase = 0; phase < spec.phases;
         ++phase, prob *= spec.escalation) {
        if (progress)
            progress(cell + " phase " + std::to_string(phase) +
                     "/" + std::to_string(spec.phases));

        SoakPhaseStats ph;
        ph.faultProb = prob;
        installRuntimeFaults(sys, cfg, prob, phase);

        for (std::uint64_t n = 0; n < spec.txPerPhase; ++n, ++txi) {
            for (unsigned c = 0; c < cfg.numCores; ++c) {
                try {
                    wls[c]->runTransaction(txi);
                } catch (const TxRejected &rj) {
                    // Shared client policy: admission rejects skip the
                    // transaction, mid-transaction rejects crash +
                    // recover onto the survivor state.
                    const RejectResolution rr = handleClientReject(
                        rj, sys, wls, c, spec.recoverThreads);
                    if (rr.action == RejectAction::CrashRecover) {
                        ++ph.rejectedMidTx;
                        ++ph.recoveries;
                    } else {
                        ++ph.rejectedAdmission;
                    }
                }
            }
            sys.maintenance();
        }

        res.rejectedAdmission += ph.rejectedAdmission;
        res.rejectedMidTx += ph.rejectedMidTx;
        res.recoveries += ph.recoveries;
        res.phases.push_back(ph);

        if (!oracle("end of phase " + std::to_string(phase))) {
            sampleGauges();
            return res;
        }
    }

    // Final endurance check: power-cycle on the fully accumulated
    // damage and make sure recovery (retired units skipped, retirement
    // bitmap reloaded) still restores every committed transaction.
    sys.crash();
    sys.recover(spec.recoverThreads);
    ++res.recoveries;
    for (auto &wl : wls)
        wl->dropPendingShadow();
    oracle("after final crash + recovery");
    sampleGauges();
    return res;
}

SoakSpec
shrinkSoak(const SoakSpec &failing, std::string *detail,
           const SoakProgress &progress)
{
    SoakSpec best = failing;
    int budget = 32;

    auto attempt = [&](const SoakSpec &cand) -> bool {
        if (budget <= 0)
            return false;
        --budget;
        const SoakResult r = runSoak(cand, progress);
        if (!r.violated)
            return false;
        best = cand;
        if (detail)
            *detail = r.detail;
        return true;
    };

    bool improved = true;
    while (improved && budget > 0) {
        improved = false;

        if (best.phases > 1) {
            SoakSpec cand = best;
            cand.phases = std::max(1u, cand.phases / 2);
            // Dropping early phases changes which faults exist; keep
            // the ramp's tail by raising the base probability to where
            // the removed phases would have escalated it.
            for (unsigned p = cand.phases; p < best.phases; ++p)
                cand.faultProb *= cand.escalation;
            if (attempt(cand)) {
                improved = true;
                continue;
            }
        }

        if (best.txPerPhase > 1) {
            SoakSpec cand = best;
            cand.txPerPhase = std::max<std::uint64_t>(
                1, cand.txPerPhase / 2);
            if (attempt(cand)) {
                improved = true;
                continue;
            }
        }

        if (best.warmupTx > 0) {
            SoakSpec cand = best;
            cand.warmupTx /= 2;
            if (attempt(cand)) {
                improved = true;
                continue;
            }
        }
    }
    return best;
}

} // namespace hoopnvm
