/**
 * @file
 * Wall-clock stall detector for the checking harnesses.
 *
 * The crash explorer and the soak harness run long deterministic
 * schedule matrices; a scheduling bug (e.g. a backpressure wedge that
 * should have degraded into TxRejected) shows up as one cell spinning
 * forever. The watchdog bounds that: the driver calls beat() as each
 * unit of work (schedule, soak phase) starts, and a background thread
 * aborts the process with a diagnostic naming the stuck unit if no
 * beat arrives within the per-unit budget.
 *
 * The watchdog never influences simulation results — simulated time is
 * untouched and a run that stays inside its budget is bit-identical
 * with the watchdog on or off. It only converts "hangs forever" into
 * "exits with code 3 and says where".
 */

#ifndef HOOPNVM_CHECK_WATCHDOG_HH
#define HOOPNVM_CHECK_WATCHDOG_HH

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>
#include <utility>

namespace hoopnvm
{

/** Per-unit wall-clock budget enforcer. A budget of 0 disables it. */
class Watchdog
{
  public:
    /** Process exit code used when the budget is exceeded. */
    static constexpr int kExitCode = 3;

    explicit Watchdog(std::uint64_t budget_ms) : budgetMs_(budget_ms)
    {
        if (budgetMs_ > 0)
            thread_ = std::thread([this] { run(); });
    }

    ~Watchdog()
    {
        if (!thread_.joinable())
            return;
        {
            std::lock_guard<std::mutex> g(m_);
            stop_ = true;
        }
        cv_.notify_all();
        thread_.join();
    }

    Watchdog(const Watchdog &) = delete;
    Watchdog &operator=(const Watchdog &) = delete;

    /**
     * Record progress and (re)name the unit now running; the budget
     * clock restarts. @p label appears in the stall diagnostic.
     */
    void
    beat(std::string label)
    {
        if (budgetMs_ == 0)
            return;
        std::lock_guard<std::mutex> g(m_);
        label_ = std::move(label);
        ++beats_;
        cv_.notify_all();
    }

  private:
    void
    run()
    {
        std::unique_lock<std::mutex> lk(m_);
        std::uint64_t seen = beats_;
        while (!stop_) {
            const auto deadline =
                // lint: nondet-api-ok (host liveness deadline for hang detection; never feeds simulated state)
                std::chrono::steady_clock::now() +
                std::chrono::milliseconds(budgetMs_);
            cv_.wait_until(lk, deadline, [&] {
                return stop_ || beats_ != seen;
            });
            if (stop_)
                return;
            if (beats_ != seen) {
                seen = beats_;
                continue;
            }
            std::fprintf(stderr,
                         "watchdog: no progress for %llu ms, giving up"
                         " (stuck in: %s)\n",
                         static_cast<unsigned long long>(budgetMs_),
                         label_.empty() ? "<startup>" : label_.c_str());
            std::fflush(stderr);
            std::_Exit(kExitCode);
        }
    }

    const std::uint64_t budgetMs_;
    std::mutex m_;
    std::condition_variable cv_;
    std::uint64_t beats_ = 0;
    bool stop_ = false;
    std::string label_;
    std::thread thread_;
};

} // namespace hoopnvm

#endif // HOOPNVM_CHECK_WATCHDOG_HH
