#include "check/crash_explorer.hh"

#include <algorithm>
#include <memory>

#include "analysis/order_harness.hh"
#include "check/soak.hh" // installRuntimeFaults
#include "common/errors.hh"
#include "sim/system.hh"
#include "workloads/registry.hh"

namespace hoopnvm
{

namespace
{

/**
 * Small, eviction-heavy machine (mirrors the crash property tests):
 * tiny caches widen the crash surface and a short GC period guarantees
 * GC-boundary events inside a short window.
 */
SystemConfig
configFor(const CrashSchedule &sched)
{
    SystemConfig cfg = smallCheckConfig(sched.numCores, sched.seed);
    cfg.debugNoCommitFence = sched.breakCommitFence;
    cfg.ft.enabled = sched.runtimeFaultProb > 0;
    // Check windows span tens of transactions, far less simulated time
    // than the default scrub cadence; scrub on the GC period so
    // scrub-driven retirement is reachable inside a schedule.
    cfg.ft.scrubPeriod = cfg.gcPeriod;
    return cfg;
}

WorkloadParams
paramsFor()
{
    WorkloadParams p;
    p.valueBytes = 64;
    p.scale = 128;
    return p;
}

unsigned
kindIndex(CrashPointKind k)
{
    return static_cast<unsigned>(k);
}

} // namespace

ScheduleResult
runSchedule(const CrashSchedule &sched)
{
    ScheduleResult res;
    const SystemConfig cfg = configFor(sched);
    System sys(cfg, sched.scheme);
    if (sched.tornWrites || sched.runtimeFaultProb > 0)
        sys.nvm().faults().setSeed(sched.seed ^ 0x7ea55eedULL);
    if (sched.tornWrites)
        sys.nvm().faults().setTornWrites(true);

    auto factory = makeWorkload(sched.workload, paramsFor());
    std::vector<std::unique_ptr<Workload>> wls;
    for (unsigned c = 0; c < cfg.numCores; ++c) {
        wls.push_back(factory(sys, c));
        wls.back()->setup();
    }

    std::uint64_t txi = 0;
    for (; txi < sched.warmupTx; ++txi) {
        for (unsigned c = 0; c < cfg.numCores; ++c)
            wls[c]->runTransaction(txi);
        sys.maintenance();
    }

    // Faults land after warmup, over capacity that is free *now*: the
    // program-verify contract then guarantees no committed data ever
    // sits on an uncorrectable cell, which is what keeps the oracles
    // strict under this regime.
    if (sched.runtimeFaultProb > 0)
        installRuntimeFaults(sys, cfg, sched.runtimeFaultProb, 0);

    sys.crashHook().resetCounts();

    // The ordering analyzer arms after warmup (rules judge the steady
    // state) and watches every phase that follows: the crash window,
    // the crash itself (onCrash retires in-flight state) and recovery.
    OrderingTracker tracker;
    if (sched.ordering)
        sys.armOrdering(&tracker);
    auto captureOrdering = [&]() {
        if (!sched.ordering)
            return;
        res.orderingRules = tracker.ruleReports();
        res.orderingTraces = tracker.violations();
        sys.armOrdering(nullptr);
    };

    // Post-recovery oracle. The crashed transaction's shadow update may
    // still be pending (the crash hit inside its commit, where both
    // durable and dropped are legal outcomes): strict verify first,
    // then retry with the pending update adopted. The legacy
    // damage-at-rest regime (mediaFaultProb) skips the oracles —
    // corrupting occupied cells legitimately vetoes committed
    // transactions, so exact equality is not the contract there. The
    // runtime regime (runtimeFaultProb) does NOT skip: its faults only
    // ever land on then-free capacity, so committed data must survive.
    auto oracle = [&](const char *when) -> bool {
        if (sched.mediaFaultProb > 0) {
            for (auto &wl : wls)
                wl->dropPendingShadow();
            return true;
        }
        for (unsigned c = 0; c < cfg.numCores; ++c) {
            bool ok = wls[c]->verify();
            if (!ok && wls[c]->hasPendingShadow()) {
                wls[c]->applyPendingShadow();
                ok = wls[c]->verify();
            } else {
                wls[c]->dropPendingShadow();
            }
            if (!ok) {
                res.violated = true;
                res.detail = std::string(schemeToken(sched.scheme)) +
                             "/" + sched.workload + " core " +
                             std::to_string(c) +
                             ": committed state lost or phantom data "
                             "surfaced (" + when + ")";
                return false;
            }
            std::string why;
            if (!wls[c]->verifyStructure(&why)) {
                res.violated = true;
                res.detail = std::string(schemeToken(sched.scheme)) +
                             "/" + sched.workload + " core " +
                             std::to_string(c) +
                             ": structural invariant broken (" + when +
                             "): " + why;
                return false;
            }
        }
        return true;
    };

    auto runWindow = [&]() {
        for (std::uint64_t n = 0; n < sched.runTx; ++n, ++txi) {
            for (unsigned c = 0; c < cfg.numCores; ++c) {
                try {
                    wls[c]->runTransaction(txi);
                } catch (const TxRejected &) {
                    // Graceful degradation: the rejected transaction
                    // wrote no commit record, so crash + recovery
                    // discards its partial effects and the stream
                    // continues on the surviving committed state.
                    sys.crash();
                    sys.recover(sched.recoverThreads);
                    for (auto &wl : wls)
                        wl->dropPendingShadow();
                }
            }
            sys.maintenance();
        }
    };

    if (sched.steps.empty()) {
        // Profiling run: measure per-class events over a crash-free
        // window, then one end-of-window crash for RecoveryStep counts.
        runWindow();
        res.events = sys.crashHook().counts();
        sys.crash();
        const std::uint64_t before =
            sys.crashHook().count(CrashPointKind::RecoveryStep);
        sys.recover(sched.recoverThreads);
        res.events[kindIndex(CrashPointKind::RecoveryStep)] =
            sys.crashHook().count(CrashPointKind::RecoveryStep) - before;
        oracle("profiling run");
        captureOrdering();
        return res;
    }

    for (const CrashStep &step : sched.steps) {
        sys.crashHook().arm(step.kind, step.countdown);
        bool crashed = false;
        try {
            runWindow();
        } catch (const SimCrash &) {
            crashed = true;
        }
        sys.crashHook().disarm(step.kind);
        if (!crashed)
            continue; // countdown exceeded the window's events

        res.crashFired = true;
        sys.crash();
        if (sched.mediaFaultProb > 0) {
            sys.nvm().faults().addMediaFault(
                cfg.oopBase(), cfg.oopBase() + cfg.oopBytes,
                MediaFaultKind::StuckAtOne, sched.mediaFaultProb);
        }

        bool rec_crashed = false;
        if (step.recoveryCountdown > 0) {
            sys.crashHook().arm(CrashPointKind::RecoveryStep,
                                step.recoveryCountdown);
            try {
                sys.recover(sched.recoverThreads);
            } catch (const SimCrash &) {
                rec_crashed = true;
                res.recoveryCrashFired = true;
            }
            sys.crashHook().disarm(CrashPointKind::RecoveryStep);
            if (rec_crashed) {
                // Power fails again mid-recovery: discard the
                // half-rebuilt volatile state and re-enter recovery on
                // the twice-crashed image.
                sys.crash();
                sys.recover(sched.recoverThreads);
            }
        } else {
            sys.recover(sched.recoverThreads);
        }

        if (!oracle(rec_crashed ? "after crash-during-recovery"
                                : "after crash + recovery")) {
            captureOrdering();
            return res;
        }
    }

    res.events = sys.crashHook().counts();
    captureOrdering();
    return res;
}

CrashSchedule
shrink(const CrashSchedule &failing, std::string *detail,
       const std::function<void(const CrashSchedule &)> &progress)
{
    CrashSchedule best = failing;
    int budget = 48;

    auto attempt = [&](const CrashSchedule &cand) -> bool {
        if (budget <= 0)
            return false;
        --budget;
        if (progress)
            progress(cand);
        const ScheduleResult r = runSchedule(cand);
        if (!r.violated)
            return false;
        best = cand;
        if (detail)
            *detail = r.detail;
        return true;
    };

    bool improved = true;
    while (improved && budget > 0) {
        improved = false;

        // Drop whole steps.
        for (std::size_t i = 0; best.steps.size() > 1 &&
                                i < best.steps.size();
             ++i) {
            CrashSchedule cand = best;
            cand.steps.erase(cand.steps.begin() +
                             static_cast<long>(i));
            if (attempt(cand)) {
                improved = true;
                break;
            }
        }
        if (improved)
            continue;

        // Shrink the warmup prefix.
        if (best.warmupTx > 0) {
            CrashSchedule cand = best;
            cand.warmupTx /= 2;
            if (attempt(cand)) {
                improved = true;
                continue;
            }
        }

        // Shrink the crash window.
        if (best.runTx > 1) {
            CrashSchedule cand = best;
            cand.runTx = std::max<std::uint64_t>(1, cand.runTx / 2);
            if (attempt(cand)) {
                improved = true;
                continue;
            }
        }

        // Pull crash points earlier.
        for (std::size_t i = 0; i < best.steps.size(); ++i) {
            if (best.steps[i].countdown > 1) {
                CrashSchedule cand = best;
                cand.steps[i].countdown /= 2;
                if (attempt(cand)) {
                    improved = true;
                    break;
                }
            }
            if (best.steps[i].recoveryCountdown > 1) {
                CrashSchedule cand = best;
                cand.steps[i].recoveryCountdown /= 2;
                if (attempt(cand)) {
                    improved = true;
                    break;
                }
            }
        }
    }
    return best;
}

ExploreReport
explore(const ExploreOptions &opt)
{
    ExploreReport rep;

    CrashSchedule base;
    base.scheme = opt.scheme;
    base.workload = opt.workload;
    base.seed = opt.seed;
    base.numCores = opt.numCores;
    base.warmupTx = opt.warmupTx;
    base.runTx = opt.runTx;
    base.recoverThreads = opt.recoverThreads;
    // A broken commit fence is only observable when the in-flight
    // record can actually tear.
    base.tornWrites = opt.tornWrites || opt.breakCommitFence;
    base.mediaFaultProb = opt.mediaFaultProb;
    base.runtimeFaultProb = opt.runtimeFaultProb;
    base.breakCommitFence = opt.breakCommitFence;
    base.ordering = opt.ordering;

    // Sum per-rule outcomes across schedules (merged by rule name): a
    // rule with zero fires over the whole sweep is dead, and every
    // violation counts even when its schedule's crash missed the
    // vulnerable window.
    auto absorbOrdering = [&rep](const ScheduleResult &r) {
        for (const OrderingRuleReport &rr : r.orderingRules) {
            auto it = std::find_if(
                rep.orderingRules.begin(), rep.orderingRules.end(),
                [&rr](const OrderingRuleReport &have) {
                    return have.name == rr.name;
                });
            if (it == rep.orderingRules.end()) {
                rep.orderingRules.push_back(rr);
            } else {
                it->fires += rr.fires;
                it->depsChecked += rr.depsChecked;
                it->violations += rr.violations;
            }
            rep.orderingViolations += rr.violations;
        }
        for (const OrderingViolation &v : r.orderingTraces) {
            if (rep.orderingTraces.size() < 50)
                rep.orderingTraces.push_back(v);
        }
    };

    if (opt.progress)
        opt.progress(base);
    const ScheduleResult profile = runSchedule(base);
    rep.eventsProfiled = profile.events;
    absorbOrdering(profile);

    std::vector<CrashPointKind> kinds = opt.kinds;
    if (kinds.empty()) {
        for (unsigned k = 0; k < kNumCrashPointKinds; ++k)
            kinds.push_back(static_cast<CrashPointKind>(k));
    }

    const std::uint64_t per_kind = std::max<std::uint64_t>(
        1, opt.budget / kinds.size());

    for (CrashPointKind kind : kinds) {
        const unsigned ki = kindIndex(kind);
        const std::uint64_t events = rep.eventsProfiled[ki];
        if (events == 0)
            continue; // this scheme never reaches the boundary class
        const std::uint64_t n = std::min(per_kind, events);
        const std::uint64_t stores = std::max<std::uint64_t>(
            1, rep.eventsProfiled[kindIndex(CrashPointKind::Store)]);

        for (std::uint64_t i = 0; i < n; ++i) {
            const std::uint64_t pos = 1 + (i * events) / n;
            CrashSchedule sched = base;
            CrashStep step;
            if (kind == CrashPointKind::RecoveryStep) {
                // Crash-during-recovery: a primary store crash brings
                // the system down, a surviving RecoveryStep countdown
                // crashes the recovery that follows.
                step.kind = CrashPointKind::Store;
                step.countdown = 1 + (i * stores) / n;
                step.recoveryCountdown = pos;
            } else {
                step.kind = kind;
                step.countdown = pos;
            }
            sched.steps.push_back(step);

            if (opt.progress)
                opt.progress(sched);
            const ScheduleResult r = runSchedule(sched);
            absorbOrdering(r);
            ++rep.schedulesRun;
            ++rep.schedulesPerKind[ki];
            if (r.crashFired)
                ++rep.crashesFired;
            if (r.recoveryCrashFired)
                ++rep.recoveryCrashesFired;
            const bool kind_fired = kind == CrashPointKind::RecoveryStep
                                        ? r.recoveryCrashFired
                                        : r.crashFired;
            if (kind_fired)
                ++rep.firedPerKind[ki];
            if (r.violated) {
                Violation v;
                v.detail = r.detail;
                v.reproducer = shrink(sched, &v.detail, opt.progress);
                rep.violations.push_back(std::move(v));
            }
        }
    }
    return rep;
}

} // namespace hoopnvm
