/**
 * @file
 * Minimal flat-object JSON reader shared by the replayable-spec
 * grammars (soak specs, fleet specs).
 *
 * Every checking harness serializes its violating experiment to a
 * small JSON object of scalar members so a failure can be re-executed
 * bit-for-bit (`--replay`). The reader here is deliberately tiny: one
 * object, string/number/bool members, no nesting beyond what the
 * specs need — and it reports the byte offset of the first syntax
 * error so a hand-edited reproducer fails loudly instead of silently
 * defaulting fields.
 */

#ifndef HOOPNVM_CHECK_SPEC_JSON_HH
#define HOOPNVM_CHECK_SPEC_JSON_HH

#include <cctype>
#include <cstdlib>
#include <string>

namespace hoopnvm
{

/** Flat-object JSON reader for the replayable-spec grammars. */
class SpecParser
{
  public:
    explicit SpecParser(const std::string &text) : s_(text) {}

    bool fail(const std::string &msg)
    {
        if (err_.empty())
            err_ = msg + " near offset " + std::to_string(pos_);
        return false;
    }

    const std::string &error() const { return err_; }

    void skipWs()
    {
        while (pos_ < s_.size() &&
               std::isspace(static_cast<unsigned char>(s_[pos_])))
            ++pos_;
    }

    bool consume(char c)
    {
        skipWs();
        if (pos_ >= s_.size() || s_[pos_] != c)
            return fail(std::string("expected '") + c + "'");
        ++pos_;
        return true;
    }

    bool peekIs(char c)
    {
        skipWs();
        return pos_ < s_.size() && s_[pos_] == c;
    }

    bool parseString(std::string *out)
    {
        if (!consume('"'))
            return false;
        out->clear();
        while (pos_ < s_.size() && s_[pos_] != '"') {
            if (s_[pos_] == '\\' && pos_ + 1 < s_.size())
                ++pos_;
            out->push_back(s_[pos_++]);
        }
        if (pos_ >= s_.size())
            return fail("unterminated string");
        ++pos_;
        return true;
    }

    bool parseNumber(double *out)
    {
        skipWs();
        const char *start = s_.c_str() + pos_;
        char *end = nullptr;
        *out = std::strtod(start, &end);
        if (end == start)
            return fail("expected number");
        pos_ += static_cast<std::size_t>(end - start);
        return true;
    }

    bool parseBool(bool *out)
    {
        skipWs();
        if (s_.compare(pos_, 4, "true") == 0) {
            pos_ += 4;
            *out = true;
            return true;
        }
        if (s_.compare(pos_, 5, "false") == 0) {
            pos_ += 5;
            *out = false;
            return true;
        }
        return fail("expected true/false");
    }

    template <typename Fn>
    bool parseObject(Fn member)
    {
        if (!consume('{'))
            return false;
        if (peekIs('}'))
            return consume('}');
        while (true) {
            std::string key;
            if (!parseString(&key) || !consume(':'))
                return false;
            if (!member(key))
                return fail("bad value for key \"" + key + "\"");
            if (peekIs(',')) {
                consume(',');
                continue;
            }
            return consume('}');
        }
    }

  private:
    const std::string &s_;
    std::size_t pos_ = 0;
    std::string err_;
};

} // namespace hoopnvm

#endif // HOOPNVM_CHECK_SPEC_JSON_HH
