/**
 * @file
 * Replayable crash schedules for the crash-consistency exploration
 * engine.
 *
 * A CrashSchedule pins down one deterministic experiment: scheme,
 * workload, seeds, transaction counts, fault regime and a sequence of
 * crash steps (each an armed crash-point boundary, optionally followed
 * by a second crash *during* the recovery it triggers). Schedules
 * serialize to JSON so a violation found by the explorer can be
 * written to disk and re-executed bit-for-bit with
 * `hoop_crashcheck --replay <file>`.
 */

#ifndef HOOPNVM_CHECK_CRASH_SCHEDULE_HH
#define HOOPNVM_CHECK_CRASH_SCHEDULE_HH

#include <string>
#include <vector>

#include "sim/crash_hook.hh"
#include "sim/system_config.hh"

namespace hoopnvm
{

/**
 * One crash episode: arm @ref kind with @ref countdown, run the
 * transaction stream until the crash fires, then recover. A non-zero
 * @ref recoveryCountdown additionally arms a RecoveryStep crash inside
 * that recovery (crash-during-recovery), after which recovery is
 * re-entered on the twice-crashed image.
 */
struct CrashStep
{
    CrashPointKind kind = CrashPointKind::Store;
    std::uint64_t countdown = 1;
    std::uint64_t recoveryCountdown = 0;
};

/** A complete, deterministic crash experiment. */
struct CrashSchedule
{
    Scheme scheme = Scheme::Hoop;
    std::string workload = "vector";
    std::uint64_t seed = 42;
    unsigned numCores = 2;
    std::uint64_t warmupTx = 10;
    std::uint64_t runTx = 40;
    unsigned recoverThreads = 2;
    bool tornWrites = false;
    double mediaFaultProb = 0.0;

    /**
     * Runtime media-fault regime: enables the fault-tolerance config
     * (ECC, bounded retry, scrubbing, retirement) and schedules seeded
     * wear-out faults over then-free capacity plus transient read
     * disturbs over the home region after warmup. Unlike
     * mediaFaultProb's damage-at-rest, this regime guarantees no data
     * loss (program-verify keeps data off bad cells), so the oracles
     * stay strict.
     */
    double runtimeFaultProb = 0.0;

    bool breakCommitFence = false;

    /** Arm the persistency-ordering analyzer for the whole run. */
    bool ordering = false;

    std::vector<CrashStep> steps;

    std::string toJson() const;

    /**
     * Parse @p text (as produced by toJson()).
     * @return false with @p err set on malformed input.
     */
    static bool fromJson(const std::string &text, CrashSchedule *out,
                         std::string *err);
};

/** Lowercase scheme token used in JSON and on the CLI ("hoop", ...). */
const char *schemeToken(Scheme s);

/** Inverse of schemeToken(). @return false on unknown token. */
bool schemeFromToken(const std::string &token, Scheme *out);

/** Inverse of crashPointKindToken(). @return false on unknown token. */
bool crashPointKindFromToken(const std::string &token,
                             CrashPointKind *out);

} // namespace hoopnvm

#endif // HOOPNVM_CHECK_CRASH_SCHEDULE_HH
