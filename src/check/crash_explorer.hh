/**
 * @file
 * Systematic crash-point exploration engine.
 *
 * The explorer turns the paper's core guarantee — recovery restores
 * exactly the committed prefix (§II-A) — into a searchable property.
 * A profiling run first measures how many crash-point events of each
 * boundary class (stores, evictions, commit records, GC steps,
 * recovery steps) one deterministic workload window exposes; the
 * budget is then spread across the classes as evenly-spaced crash
 * schedules. Each schedule crashes, optionally crashes *again inside
 * recovery*, re-enters recovery on the twice-crashed image, and
 * validates two oracles:
 *
 *  1. committed-shadow equality (Workload::verify), with the
 *     commit-record ambiguity resolved by trying the crashed
 *     transaction's pending shadow update both ways, and
 *  2. the workload's structural invariants
 *     (Workload::verifyStructure: B-tree ordering/occupancy, red-black
 *     properties, FIFO continuity, hash-chain integrity).
 *
 * A violating schedule is shrunk to a minimal reproducer and can be
 * serialized for deterministic replay (see crash_schedule.hh).
 */

#ifndef HOOPNVM_CHECK_CRASH_EXPLORER_HH
#define HOOPNVM_CHECK_CRASH_EXPLORER_HH

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "analysis/ordering_tracker.hh"
#include "check/crash_schedule.hh"

namespace hoopnvm
{

/** Parameters of one exploration sweep (one scheme x one workload). */
struct ExploreOptions
{
    Scheme scheme = Scheme::Hoop;
    std::string workload = "vector";
    std::uint64_t seed = 42;

    /** Maximum schedules to run, split across the boundary classes. */
    std::uint64_t budget = 100;

    unsigned numCores = 2;
    std::uint64_t warmupTx = 10;
    std::uint64_t runTx = 40;
    unsigned recoverThreads = 2;

    bool tornWrites = false;
    double mediaFaultProb = 0.0;

    /**
     * Runtime media-fault regime (see CrashSchedule::runtimeFaultProb):
     * fault tolerance enabled, seeded wear-out + transient faults, and
     * the oracles stay strict.
     */
    double runtimeFaultProb = 0.0;

    /** Debug knob: commit acks before the record is durable. */
    bool breakCommitFence = false;

    /**
     * Arm the persistency-ordering analyzer on every schedule. Rule
     * checks run continuously, so a broken fence is reported as a
     * violated rule even when no schedule's crash lands in the
     * vulnerable window.
     */
    bool ordering = false;

    /** Boundary classes to explore; empty = all five. */
    std::vector<CrashPointKind> kinds;

    /**
     * Invoked immediately before each schedule executes (profiling and
     * shrink runs included). Drives external progress tracking — the
     * CLI beats its per-schedule watchdog here.
     */
    std::function<void(const CrashSchedule &)> progress;
};

/** Outcome of executing one schedule. */
struct ScheduleResult
{
    bool violated = false;

    /** Any step's primary crash point actually fired. */
    bool crashFired = false;

    /** A crash-during-recovery point actually fired. */
    bool recoveryCrashFired = false;

    /** Human-readable description of the first violation. */
    std::string detail;

    /** Per-class event counts over the run window (profiling). */
    std::array<std::uint64_t, kNumCrashPointKinds> events{};

    /** Per-rule outcome of this schedule (ordering armed only). */
    std::vector<OrderingRuleReport> orderingRules;

    /** Ordering-violation traces of this schedule (capped). */
    std::vector<OrderingViolation> orderingTraces;
};

/** One confirmed, shrunken violation. */
struct Violation
{
    CrashSchedule reproducer;
    std::string detail;
};

/** Aggregate outcome of explore(). */
struct ExploreReport
{
    /** Event counts measured by the profiling run. */
    std::array<std::uint64_t, kNumCrashPointKinds> eventsProfiled{};

    std::uint64_t schedulesRun = 0;
    std::uint64_t crashesFired = 0;
    std::uint64_t recoveryCrashesFired = 0;

    std::array<std::uint64_t, kNumCrashPointKinds> schedulesPerKind{};
    std::array<std::uint64_t, kNumCrashPointKinds> firedPerKind{};

    std::vector<Violation> violations;

    /**
     * Per-rule outcomes summed over every schedule of the sweep
     * (ordering armed only). A rule with zero aggregate fires never
     * triggered anywhere in the sweep — a spec-coverage hole.
     */
    std::vector<OrderingRuleReport> orderingRules;

    /** Total ordering-rule violations over the sweep. */
    std::uint64_t orderingViolations = 0;

    /** Sample ordering-violation traces (capped). */
    std::vector<OrderingViolation> orderingTraces;
};

/**
 * Execute @p schedule deterministically: warmup, then each crash step,
 * recovery (re-entered if the step crashed it), and both oracles.
 * A schedule with no steps is a profiling run: the window executes
 * crash-free, a final crash+recovery measures RecoveryStep events, and
 * per-class counts are returned in ScheduleResult::events.
 */
ScheduleResult runSchedule(const CrashSchedule &schedule);

/**
 * Greedily shrink @p failing toward a minimal schedule that still
 * violates: drop steps, shrink warmup/window, reduce countdowns.
 * @p progress (optional) is invoked before each shrink attempt runs.
 * @return the smallest still-violating schedule found.
 */
CrashSchedule
shrink(const CrashSchedule &failing, std::string *detail = nullptr,
       const std::function<void(const CrashSchedule &)> &progress = {});

/** Run a full budget-bounded sweep for one scheme x workload. */
ExploreReport explore(const ExploreOptions &opt);

} // namespace hoopnvm

#endif // HOOPNVM_CHECK_CRASH_EXPLORER_HH
