/**
 * @file
 * Media-fault soak engine: long deterministic runs under escalating
 * fault rates.
 *
 * Where the crash explorer asks "does one surgically placed crash
 * lose committed data?", the soak engine asks the endurance question:
 * as the media accumulates permanent damage, does the system keep its
 * two promises —
 *
 *  1. integrity: committed data is never lost or corrupted (the
 *     program-verify contract keeps new data off bad cells, retirement
 *     removes them from circulation, recovery skips retired units), and
 *  2. graceful degradation: capacity exhaustion surfaces as structured
 *     TxRejected admissions/unwinds, never as an abort or a wedge.
 *
 * One soak cell runs warmup, then a sequence of phases. Each phase
 * installs fresh seeded faults over capacity the scheme reports as
 * free (plus transient read disturbs over the home region) at an
 * escalating per-word probability, runs a transaction window with
 * TxRejected handled the way a real client would (admission rejects
 * skip the transaction; mid-transaction unwinds crash + recover and
 * continue on the survivor state), and checks both oracles. The run
 * ends with a final crash + recovery on the accumulated damage.
 *
 * Everything is seeded; a violating spec serializes to JSON and
 * shrinks to a minimal reproducer (`hoop_soak --replay`).
 */

#ifndef HOOPNVM_CHECK_SOAK_HH
#define HOOPNVM_CHECK_SOAK_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "check/crash_schedule.hh" // schemeToken

namespace hoopnvm
{

/** One deterministic soak cell (scheme x workload x fault ramp). */
struct SoakSpec
{
    Scheme scheme = Scheme::Hoop;
    std::string workload = "vector";
    std::uint64_t seed = 42;
    unsigned numCores = 2;
    std::uint64_t warmupTx = 10;

    /** Escalation steps; phase p installs faults at faultProb *
     *  escalation^p over then-free capacity. */
    unsigned phases = 4;

    /** Transactions per core per phase. */
    std::uint64_t txPerPhase = 60;

    /** Per-word fault probability of the first phase. */
    double faultProb = 0.01;

    /** Per-phase probability multiplier. */
    double escalation = 2.0;

    unsigned recoverThreads = 2;

    std::string toJson() const;

    /**
     * Parse @p text (as produced by toJson()).
     * @return false with @p err set on malformed input.
     */
    static bool fromJson(const std::string &text, SoakSpec *out,
                        std::string *err);
};

/** Per-phase observability of one soak run. */
struct SoakPhaseStats
{
    double faultProb = 0.0;

    /** Admission-time rejects (txBegin refused; transaction skipped). */
    std::uint64_t rejectedAdmission = 0;

    /** Mid-transaction unwinds (crash + recovery discarded the tx). */
    std::uint64_t rejectedMidTx = 0;

    std::uint64_t recoveries = 0;
};

/** Outcome of one soak cell. */
struct SoakResult
{
    bool violated = false;

    /** Human-readable description of the first violation. */
    std::string detail;

    std::uint64_t rejectedAdmission = 0;
    std::uint64_t rejectedMidTx = 0;
    std::uint64_t recoveries = 0;

    // End-of-run fault-tolerance gauges.
    std::uint64_t retiredUnits = 0;
    std::uint64_t correctedWords = 0;
    std::uint64_t readRetries = 0;
    std::uint64_t uncorrectableReads = 0;
    double degradedFraction = 0.0;

    std::vector<SoakPhaseStats> phases;
};

/** Progress sink: invoked with a label as each phase starts. */
using SoakProgress = std::function<void(const std::string &)>;

class System;

/**
 * Install the checkers' shared runtime-fault battery: permanent
 * stuck-at damage striped over capacity the scheme reports as free
 * right now (program-verify steers new data around it, exercising
 * retirement instead of losing data) plus transient read disturbs
 * over the home region (cleared by the bounded retry path). Stripes
 * alternate uncorrectable (multi-bit, retire-forcing) and
 * ECC-correctable (single-bit) damage, uncorrectable first — free
 * extents coalesce and are consumed front-first, so leading with
 * uncorrectable stripes keeps retirement reachable inside short check
 * windows. @p salt rotates stuck-at polarity across installs. Every
 * fault draw is seeded: the battery is deterministic.
 */
void installRuntimeFaults(System &sys, const SystemConfig &cfg,
                          double prob, unsigned salt);

/** Execute @p spec deterministically. */
SoakResult runSoak(const SoakSpec &spec,
                   const SoakProgress &progress = {});

/**
 * Greedily shrink @p failing toward a minimal still-violating spec:
 * fewer phases, smaller windows, less warmup.
 */
SoakSpec shrinkSoak(const SoakSpec &failing,
                    std::string *detail = nullptr,
                    const SoakProgress &progress = {});

} // namespace hoopnvm

#endif // HOOPNVM_CHECK_SOAK_HH
