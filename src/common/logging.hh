/**
 * @file
 * Error reporting helpers, following the gem5 panic()/fatal() convention.
 *
 * panic() is for conditions that indicate a bug in the simulator itself;
 * fatal() is for conditions caused by invalid user configuration. Both
 * terminate the process; panic() aborts so a core dump is produced.
 */

#ifndef HOOPNVM_COMMON_LOGGING_HH
#define HOOPNVM_COMMON_LOGGING_HH

#include <cstdio>
#include <cstdlib>

namespace hoopnvm
{

/** Internal helper: print a tagged message with source location. */
template <typename... Args>
[[noreturn]] inline void
reportAndDie(bool do_abort, const char *tag, const char *file, int line,
             const char *fmt, Args... args)
{
    std::fprintf(stderr, "%s: %s:%d: ", tag, file, line);
    if constexpr (sizeof...(Args) == 0) {
        std::fputs(fmt, stderr);
    } else {
        std::fprintf(stderr, fmt, args...);
    }
    std::fputc('\n', stderr);
    if (do_abort)
        std::abort();
    std::exit(1);
}

} // namespace hoopnvm

/** Unrecoverable simulator bug: print and abort. */
#define HOOP_PANIC(...) \
    ::hoopnvm::reportAndDie(true, "panic", __FILE__, __LINE__, __VA_ARGS__)

/** Unrecoverable user/configuration error: print and exit(1). */
#define HOOP_FATAL(...) \
    ::hoopnvm::reportAndDie(false, "fatal", __FILE__, __LINE__, __VA_ARGS__)

/** Internal consistency check that is always compiled in. */
#define HOOP_ASSERT(cond, ...)                                          \
    do {                                                                \
        if (!(cond)) {                                                  \
            ::hoopnvm::reportAndDie(true, "assert(" #cond ")",          \
                                    __FILE__, __LINE__, __VA_ARGS__);   \
        }                                                               \
    } while (0)

#endif // HOOPNVM_COMMON_LOGGING_HH
