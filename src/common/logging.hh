/**
 * @file
 * Error reporting helpers, following the gem5 panic()/fatal() convention.
 *
 * panic() is for conditions that indicate a bug in the simulator itself;
 * fatal() is for conditions caused by invalid user configuration. Both
 * terminate the process; panic() aborts so a core dump is produced.
 *
 * Fatal-vs-structured split (runtime fault-tolerance audit)
 * ---------------------------------------------------------
 * A runtime-reachable exhaustion or media-fault path must never
 * terminate the process: a production controller degrades to a typed
 * rejection the caller can observe (common/errors.hh, TxRejected).
 * HOOP_FATAL is reserved for conditions a correctly-sized, correctly-
 * invoked simulation cannot reach at runtime. The audited sites:
 *
 *  Converted to `throw TxRejected{...}` (runtime exhaustion, reachable
 *  under heavy traffic or retired-capacity loss):
 *   - hoop/hoop_controller.cc  OOP region wedged by open transactions
 *     (RejectCause::OopExhausted), and admission rejection once retired
 *     capacity crosses ft.rejectCapacityFraction (CapacityDegraded).
 *   - baselines/redo_controller.cc, undo_controller.cc,
 *     lsm_controller.cc, osp_controller.cc  log ring wedged by open
 *     transactions or fully retired (RejectCause::LogExhausted /
 *     CapacityDegraded).
 *
 *  Kept HOOP_FATAL (setup/configuration errors, not fault paths):
 *   - txn/sim_allocator.cc      arena sized too small for the workload.
 *   - workloads/registry.cc     unknown workload name (CLI input).
 *   - workloads/hashmap_wl.cc   table sized too small for the key space.
 *   - bench/ *.cc               driver-level verification assertions
 *     (a failed bench verification is a test failure, not service).
 */

#ifndef HOOPNVM_COMMON_LOGGING_HH
#define HOOPNVM_COMMON_LOGGING_HH

#include <cstdio>
#include <cstdlib>

namespace hoopnvm
{

/** Internal helper: print a tagged message with source location. */
template <typename... Args>
[[noreturn]] inline void
reportAndDie(bool do_abort, const char *tag, const char *file, int line,
             const char *fmt, Args... args)
{
    std::fprintf(stderr, "%s: %s:%d: ", tag, file, line);
    if constexpr (sizeof...(Args) == 0) {
        std::fputs(fmt, stderr);
    } else {
        std::fprintf(stderr, fmt, args...);
    }
    std::fputc('\n', stderr);
    if (do_abort)
        std::abort();
    std::exit(1);
}

} // namespace hoopnvm

/** Unrecoverable simulator bug: print and abort. */
#define HOOP_PANIC(...) \
    ::hoopnvm::reportAndDie(true, "panic", __FILE__, __LINE__, __VA_ARGS__)

/** Unrecoverable user/configuration error: print and exit(1). */
#define HOOP_FATAL(...) \
    ::hoopnvm::reportAndDie(false, "fatal", __FILE__, __LINE__, __VA_ARGS__)

/** Internal consistency check that is always compiled in. */
#define HOOP_ASSERT(cond, ...)                                          \
    do {                                                                \
        if (!(cond)) {                                                  \
            ::hoopnvm::reportAndDie(true, "assert(" #cond ")",          \
                                    __FILE__, __LINE__, __VA_ARGS__);   \
        }                                                               \
    } while (0)

#endif // HOOPNVM_COMMON_LOGGING_HH
