#include "common/zipfian.hh"

#include <cmath>

#include "common/logging.hh"

namespace hoopnvm
{

double
ZipfianGenerator::zeta(std::uint64_t n, double theta)
{
    double sum = 0.0;
    for (std::uint64_t i = 1; i <= n; ++i)
        sum += 1.0 / std::pow(static_cast<double>(i), theta);
    return sum;
}

ZipfianGenerator::ZipfianGenerator(std::uint64_t n, double theta_,
                                   std::uint64_t seed)
    : items(n),
      theta(theta_),
      zetaN(zeta(n, theta_)),
      zeta2(zeta(2, theta_)),
      alpha(1.0 / (1.0 - theta_)),
      eta((1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta_)) /
          (1.0 - zeta2 / zetaN)),
      rng(seed)
{
    HOOP_ASSERT(n >= 2, "Zipfian needs at least two items");
    HOOP_ASSERT(theta > 0.0 && theta < 1.0, "theta must be in (0, 1)");
}

std::uint64_t
ZipfianGenerator::next()
{
    const double u = rng.nextDouble();
    const double uz = u * zetaN;
    if (uz < 1.0)
        return 0;
    if (uz < 1.0 + std::pow(0.5, theta))
        return 1;
    const auto v = static_cast<std::uint64_t>(
        static_cast<double>(items) *
        std::pow(eta * u - eta + 1.0, alpha));
    return v >= items ? items - 1 : v;
}

} // namespace hoopnvm
