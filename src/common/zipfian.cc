#include "common/zipfian.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace hoopnvm
{

double
ZipfianGenerator::zeta(std::uint64_t n, double theta)
{
    double sum = 0.0;
    for (std::uint64_t i = 1; i <= n; ++i)
        sum += 1.0 / std::pow(static_cast<double>(i), theta);
    return sum;
}

ZipfianGenerator::ZipfianGenerator(std::uint64_t n, double theta_,
                                   std::uint64_t seed)
    : items(n),
      theta(theta_),
      zetaN(zeta(n, theta_)),
      zeta2(zeta(std::min<std::uint64_t>(n, 2), theta_)),
      alpha(theta_ < 1.0 ? 1.0 / (1.0 - theta_) : 0.0),
      eta(n >= 2 && theta_ < 1.0
              ? (1.0 - std::pow(2.0 / static_cast<double>(n),
                                1.0 - theta_)) /
                    (1.0 - zeta2 / zetaN)
              : 0.0),
      rng(seed)
{
    HOOP_ASSERT(n >= 1, "Zipfian needs at least one item");
    HOOP_ASSERT(theta >= 0.0 && theta <= 1.0,
                "theta must be in [0, 1]");
    if (items > 1 && theta > kGrayThetaMax) {
        // Exact inverse-CDF path: Gray's closed form is numerically
        // unusable this close to theta == 1 (see header). zetaN was
        // just recomputed for this exact (n, theta), so the table is
        // correctly normalized even when n differs from a previous
        // generator's.
        cdf_.resize(items);
        double cum = 0.0;
        for (std::uint64_t i = 0; i < items; ++i) {
            cum += 1.0 /
                   (std::pow(static_cast<double>(i + 1), theta) * zetaN);
            cdf_[i] = cum;
        }
        cdf_.back() = 1.0; // absorb rounding in the final bin
    }
}

std::uint64_t
ZipfianGenerator::next()
{
    if (items <= 1)
        return 0;
    const double u = rng.nextDouble();
    if (!cdf_.empty()) {
        const auto it =
            std::lower_bound(cdf_.begin(), cdf_.end(), u);
        const auto v = static_cast<std::uint64_t>(it - cdf_.begin());
        return v >= items ? items - 1 : v;
    }
    const double uz = u * zetaN;
    if (uz < 1.0)
        return 0;
    if (uz < 1.0 + std::pow(0.5, theta))
        return 1;
    const auto v = static_cast<std::uint64_t>(
        static_cast<double>(items) *
        std::pow(eta * u - eta + 1.0, alpha));
    return v >= items ? items - 1 : v;
}

double
ZipfianGenerator::itemProbability(std::uint64_t i) const
{
    if (items <= 1)
        return i == 0 ? 1.0 : 0.0;
    if (i >= items)
        return 0.0;
    return 1.0 / (std::pow(static_cast<double>(i + 1), theta) * zetaN);
}

} // namespace hoopnvm
