/**
 * @file
 * Integer mixing hash used by the hardware mapping table model and the
 * GC coalescing map. A memory-controller hash table would use a simple
 * XOR-fold of address bits; we use a stronger 64-bit finalizer so the
 * software model's collision behaviour is not accidentally worse than
 * the modelled hardware's.
 */

#ifndef HOOPNVM_COMMON_HASH_HH
#define HOOPNVM_COMMON_HASH_HH

#include <cstdint>

namespace hoopnvm
{

/** SplitMix64 finalizer: a high-quality 64-bit mixing function. */
constexpr std::uint64_t
mixHash(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

} // namespace hoopnvm

#endif // HOOPNVM_COMMON_HASH_HH
