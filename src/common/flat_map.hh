/**
 * @file
 * Open-addressed hash map from 64-bit keys to POD values, shared by the
 * simulator's metadata hot paths (coherence sharer masks, home-region
 * freshness watermarks, GC coalescing, recovery replay).
 *
 * The layout follows the MappingTable model that PR 2 proved out:
 * linear probing over a power-of-two slot array with backward-shift
 * deletion (no tombstones), keys packed in their own array so the probe
 * loop scans eight 8-byte keys per host cache line and touches a value
 * only on a hit. Unlike MappingTable it has no modelled capacity — it
 * is a host-side container and grows by doubling at 3/4 load.
 *
 * The value array is deliberately left uninitialized (and clear()
 * keeps the allocation): a slot's value is written by operator[]
 * before it becomes reachable, so zeroing it wholesale on every
 * growth step would only add memory traffic — with multi-hundred-byte
 * accumulator values (the GC and recovery line accumulators) that
 * zeroing dominated the map's cost.
 *
 * Constraints: keys must never equal kEmptyKey (all-ones — impossible
 * for the simulated addresses and sequence-assigned ids stored here),
 * and V must be trivially copyable (slots are relocated with plain
 * assignment during growth and deletion). Iteration via forEach visits
 * slots in table order, which depends on the insertion history; callers
 * whose observable behaviour depends on order must sort what they
 * collect (the GC and recovery paths do).
 */

#ifndef HOOPNVM_COMMON_FLAT_MAP_HH
#define HOOPNVM_COMMON_FLAT_MAP_HH

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/hash.hh"

namespace hoopnvm
{

template <typename V>
class FlatMap
{
  public:
    static constexpr std::uint64_t kEmptyKey =
        ~static_cast<std::uint64_t>(0);

    FlatMap()
        : keys_(kInitialSlots, kEmptyKey),
          vals_(std::make_unique_for_overwrite<V[]>(kInitialSlots))
    {
    }

    /** Pointer to the value for @p key, or nullptr when absent. */
    V *
    find(std::uint64_t key)
    {
        const std::size_t i = findSlot(key);
        return i == kNoSlot ? nullptr : &vals_[i];
    }

    const V *
    find(std::uint64_t key) const
    {
        const std::size_t i = findSlot(key);
        return i == kNoSlot ? nullptr : &vals_[i];
    }

    bool contains(std::uint64_t key) const { return findSlot(key) != kNoSlot; }

    /**
     * Value for @p key, inserting a value-initialized V when absent.
     * The reference stays valid until the next insertion (growth may
     * relocate slots).
     */
    V &
    operator[](std::uint64_t key)
    {
        std::size_t i = findSlot(key);
        if (i != kNoSlot)
            return vals_[i];
        if ((size_ + 1) * 4 > keys_.size() * 3)
            grow();
        const std::size_t mask = keys_.size() - 1;
        i = homeSlot(key);
        while (keys_[i] != kEmptyKey)
            i = (i + 1) & mask;
        keys_[i] = key;
        vals_[i] = V{};
        ++size_;
        return vals_[i];
    }

    /** Drop @p key; no-op if absent. Backward-shift, no tombstones. */
    void
    erase(std::uint64_t key)
    {
        std::size_t i = findSlot(key);
        if (i == kNoSlot)
            return;
        --size_;
        const std::size_t mask = keys_.size() - 1;
        std::size_t j = i;
        for (;;) {
            j = (j + 1) & mask;
            if (keys_[j] == kEmptyKey)
                break;
            const std::size_t home = homeSlot(keys_[j]);
            // keys_[j] can fill the hole unless its home slot lies
            // (cyclically) strictly after the hole — then it is
            // already reachable from its home and must stay put.
            const bool keep = (i <= j) ? (i < home && home <= j)
                                       : (i < home || home <= j);
            if (!keep) {
                keys_[i] = keys_[j];
                vals_[i] = vals_[j];
                i = j;
            }
        }
        keys_[i] = kEmptyKey;
    }

    /** Visit every (key, value) pair in table (not insertion) order. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (std::size_t i = 0; i < keys_.size(); ++i) {
            if (keys_[i] != kEmptyKey)
                fn(keys_[i], vals_[i]);
        }
    }

    /** Grow the slot array so @p n entries fit without rehashing. */
    void
    reserve(std::size_t n)
    {
        while (n * 4 > keys_.size() * 3)
            grow();
    }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    /** Drop every entry, retaining the slot allocation. */
    void
    clear()
    {
        std::fill(keys_.begin(), keys_.end(), kEmptyKey);
        size_ = 0;
    }

  private:
    static constexpr std::size_t kInitialSlots = 16;
    static constexpr std::size_t kNoSlot = ~static_cast<std::size_t>(0);

    std::size_t
    homeSlot(std::uint64_t key) const
    {
        return static_cast<std::size_t>(mixHash(key)) &
               (keys_.size() - 1);
    }

    std::size_t
    findSlot(std::uint64_t key) const
    {
        const std::size_t mask = keys_.size() - 1;
        std::size_t i = homeSlot(key);
        while (keys_[i] != kEmptyKey) {
            if (keys_[i] == key)
                return i;
            i = (i + 1) & mask;
        }
        return kNoSlot;
    }

    void
    grow()
    {
        std::vector<std::uint64_t> old_keys(keys_.size() * 2,
                                            kEmptyKey);
        old_keys.swap(keys_);
        std::unique_ptr<V[]> old_vals =
            std::make_unique_for_overwrite<V[]>(keys_.size());
        old_vals.swap(vals_);
        const std::size_t mask = keys_.size() - 1;
        for (std::size_t s = 0; s < old_keys.size(); ++s) {
            if (old_keys[s] == kEmptyKey)
                continue;
            std::size_t i = homeSlot(old_keys[s]);
            while (keys_[i] != kEmptyKey)
                i = (i + 1) & mask;
            keys_[i] = old_keys[s];
            vals_[i] = old_vals[s];
        }
    }

    std::size_t size_ = 0;
    std::vector<std::uint64_t> keys_;
    std::unique_ptr<V[]> vals_;
};

/**
 * Keys of an associative container in ascending order — the
 * deterministic way to iterate an unordered_map whose visit order is
 * observable (NVM write sequencing, log streaming, trace emission).
 * The harvest loop itself is order-insensitive; callers then index
 * the container by sorted key.
 */
template <typename Set>
std::vector<typename Set::key_type>
sortedValues(const Set &s)
{
    std::vector<typename Set::key_type> vals;
    vals.reserve(s.size());
    // lint: unordered-iter-ok (order-insensitive harvest; callers iterate the sorted result)
    for (const auto &v : s)
        vals.push_back(v);
    std::sort(vals.begin(), vals.end());
    return vals;
}

template <typename Map>
std::vector<typename Map::key_type>
sortedKeys(const Map &m)
{
    std::vector<typename Map::key_type> keys;
    keys.reserve(m.size());
    // lint: unordered-iter-ok (order-insensitive key harvest; callers iterate the sorted result)
    for (const auto &kv : m)
        keys.push_back(kv.first);
    std::sort(keys.begin(), keys.end());
    return keys;
}

} // namespace hoopnvm

#endif // HOOPNVM_COMMON_FLAT_MAP_HH
