/**
 * @file
 * Fundamental types and constants shared by every hoopnvm module.
 *
 * All simulated time is kept in integer picoseconds (Tick) so that cache
 * and NVM latencies derived from a 2.5 GHz core clock (0.4 ns/cycle) stay
 * exact. All simulated memory locations are physical addresses (Addr) in
 * a flat simulated physical address space that spans the NVM home region
 * and the out-of-place (OOP) region.
 */

#ifndef HOOPNVM_COMMON_TYPES_HH
#define HOOPNVM_COMMON_TYPES_HH

#include <cstddef>
#include <cstdint>

namespace hoopnvm
{

/** Simulated physical byte address. */
using Addr = std::uint64_t;

/** Simulated time in picoseconds. */
using Tick = std::uint64_t;

/** Core (hardware thread) identifier. */
using CoreId = std::uint32_t;

/** Transaction identifier assigned by the memory controller. */
using TxId = std::uint64_t;

/** An address value that never names a real location. */
constexpr Addr kInvalidAddr = ~static_cast<Addr>(0);

/** Transaction id meaning "no transaction". */
constexpr TxId kInvalidTxId = ~static_cast<TxId>(0);

/** A tick later than any the simulation can reach ("never"). */
constexpr Tick kNeverTick = ~static_cast<Tick>(0);

/** Cache line size used throughout the memory hierarchy (bytes). */
constexpr std::size_t kCacheLineSize = 64;

/** Machine word size; HOOP tracks updates at this granularity (bytes). */
constexpr std::size_t kWordSize = 8;

/** Number of words in one cache line. */
constexpr std::size_t kWordsPerLine = kCacheLineSize / kWordSize;

/** Picoseconds per nanosecond. */
constexpr Tick kTicksPerNs = 1000;

/** Convert nanoseconds to ticks. */
constexpr Tick
nsToTicks(double ns)
{
    return static_cast<Tick>(ns * static_cast<double>(kTicksPerNs));
}

/** Convert ticks to (fractional) nanoseconds. */
constexpr double
ticksToNs(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(kTicksPerNs);
}

/** Convert ticks to (fractional) milliseconds. */
constexpr double
ticksToMs(Tick t)
{
    return ticksToNs(t) / 1e6;
}

/** Round @p a down to a multiple of @p align (power of two). */
constexpr Addr
alignDown(Addr a, std::uint64_t align)
{
    return a & ~(align - 1);
}

/** Round @p a up to a multiple of @p align (power of two). */
constexpr Addr
alignUp(Addr a, std::uint64_t align)
{
    return (a + align - 1) & ~(align - 1);
}

/** Address of the cache line containing @p a. */
constexpr Addr
lineAddr(Addr a)
{
    return alignDown(a, kCacheLineSize);
}

/** Address of the word containing @p a. */
constexpr Addr
wordAddr(Addr a)
{
    return alignDown(a, kWordSize);
}

/** True if @p a is a multiple of @p align (power of two). */
constexpr bool
isAligned(Addr a, std::uint64_t align)
{
    return (a & (align - 1)) == 0;
}

/** Kibibytes to bytes. */
constexpr std::uint64_t
kiB(std::uint64_t n)
{
    return n << 10;
}

/** Mebibytes to bytes. */
constexpr std::uint64_t
miB(std::uint64_t n)
{
    return n << 20;
}

/** Gibibytes to bytes. */
constexpr std::uint64_t
giB(std::uint64_t n)
{
    return n << 30;
}

} // namespace hoopnvm

#endif // HOOPNVM_COMMON_TYPES_HH
