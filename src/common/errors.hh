/**
 * @file
 * Structured runtime errors for fault/exhaustion paths.
 *
 * A production persistent-memory system must degrade, not die: when
 * capacity is exhausted by retired bad blocks or pinned open
 * transactions, the controller rejects the offending transaction with a
 * typed error that callers (the soak harness, a real admission layer)
 * can observe and count. HOOP_FATAL remains reserved for genuine
 * invariant violations and setup/configuration errors — see the
 * fatal-vs-structured split documented in common/logging.hh.
 *
 * TxRejected unwinds through the same cooperative call stack as
 * SimCrash (sim/crash_hook.hh): workloads propagate it out of
 * runTransaction() and the driver decides what a rejection means
 * (graceful stop, backoff, test failure). Rejections at txBegin are
 * clean (no transactional state exists yet); rejections mid-transaction
 * abort that transaction — its out-of-place/logged writes carry no
 * commit record, so a subsequent crash+recovery discards them exactly
 * like any other uncommitted transaction.
 */

#ifndef HOOPNVM_COMMON_ERRORS_HH
#define HOOPNVM_COMMON_ERRORS_HH

namespace hoopnvm
{

/** Why a transaction was rejected instead of served. */
enum class RejectCause
{
    /** OOP region wedged: every block pinned by open transactions. */
    OopExhausted,

    /** Baseline log ring wedged: all live entries belong to open txs. */
    LogExhausted,

    /** Retired capacity crossed the configured degradation threshold. */
    CapacityDegraded,
};

/** Stable lowercase token for @p c (soak JSON, logs). */
inline const char *
rejectCauseName(RejectCause c)
{
    switch (c) {
      case RejectCause::OopExhausted:
        return "oop_exhausted";
      case RejectCause::LogExhausted:
        return "log_exhausted";
      case RejectCause::CapacityDegraded:
        return "capacity_degraded";
    }
    return "?";
}

/** Thrown on a structured (non-fatal) transaction rejection. */
struct TxRejected
{
    RejectCause cause = RejectCause::CapacityDegraded;

    /** Static human-readable detail (no ownership). */
    const char *detail = "";
};

/**
 * Final, client-visible disposition of one fleet request. Every
 * request ends in exactly one of these — the serving layer converts
 * TxRejected (and shard unavailability) into retries, and retries
 * exhaust into one of the structured failure outcomes below; nothing
 * a client submits may end in HOOP_FATAL.
 */
enum class ClientOutcome
{
    /** Committed and acknowledged (possibly after retries). */
    Acked,

    /** Retry budget exhausted on structured rejections. */
    Rejected,

    /** Per-request deadline expired before an ack (TxTimeout). */
    TxTimeout,

    /** Refused up front by admission control (load shedding). */
    Shed,
};

/** Stable lowercase token for @p o (fleet JSON, logs). */
inline const char *
clientOutcomeName(ClientOutcome o)
{
    switch (o) {
      case ClientOutcome::Acked:
        return "acked";
      case ClientOutcome::Rejected:
        return "rejected";
      case ClientOutcome::TxTimeout:
        return "tx_timeout";
      case ClientOutcome::Shed:
        return "shed";
    }
    return "?";
}

} // namespace hoopnvm

#endif // HOOPNVM_COMMON_ERRORS_HH
