/**
 * @file
 * Shared JSON string escaping (see json.hh).
 */
#include "common/json.hh"

#include <cstdio>

namespace hoopnvm
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        const unsigned char u = static_cast<unsigned char>(c);
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\b':
            out += "\\b";
            break;
          case '\f':
            out += "\\f";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (u < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", u);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
jsonQuote(const std::string &s)
{
    return "\"" + jsonEscape(s) + "\"";
}

} // namespace hoopnvm
