#include "common/rng.hh"

#include "common/logging.hh"

namespace hoopnvm
{

Rng::Rng(std::uint64_t seed)
    : state(seed ? seed : 0x9e3779b97f4a7c15ULL)
{
}

std::uint64_t
Rng::next()
{
    // xorshift64* (Vigna, 2016).
    state ^= state >> 12;
    state ^= state << 25;
    state ^= state >> 27;
    return state * 0x2545f4914f6cdd1dULL;
}

std::uint64_t
Rng::nextBounded(std::uint64_t bound)
{
    HOOP_ASSERT(bound != 0, "nextBounded(0)");
    // Multiply-shift bounded draw; bias is negligible for our bounds.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
}

std::uint64_t
Rng::nextRange(std::uint64_t lo, std::uint64_t hi)
{
    HOOP_ASSERT(lo <= hi, "nextRange with lo > hi");
    return lo + nextBounded(hi - lo + 1);
}

double
Rng::nextDouble()
{
    // 53 high-quality bits into the mantissa.
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

} // namespace hoopnvm
