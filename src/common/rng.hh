/**
 * @file
 * Deterministic pseudo-random number generation for workloads.
 *
 * The simulator must be reproducible run-to-run, so all randomness comes
 * from explicitly seeded xorshift64* generators rather than std::random
 * devices. xorshift64* is fast, has a 2^64-1 period, and passes BigCrush
 * for the uses we have (workload key selection and value payloads).
 */

#ifndef HOOPNVM_COMMON_RNG_HH
#define HOOPNVM_COMMON_RNG_HH

#include <cstdint>

namespace hoopnvm
{

/** xorshift64* pseudo-random generator. */
class Rng
{
  public:
    /** Construct with a non-zero seed (0 is remapped internally). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound). @p bound must be non-zero. */
    std::uint64_t nextBounded(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t nextRange(std::uint64_t lo, std::uint64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli draw with probability @p p of returning true. */
    bool nextBool(double p);

  private:
    std::uint64_t state;
};

} // namespace hoopnvm

#endif // HOOPNVM_COMMON_RNG_HH
