/**
 * @file
 * Software CRC-32C (Castagnoli polynomial, reflected 0x82f63b78).
 *
 * Used as the integrity check carried in the reserved bytes of HOOP
 * memory slices and OOP block headers: real NVM controllers carve ECC
 * or CRC metadata into their line formats for exactly this purpose
 * (cf. in-cache-line logging systems), and CRC-32C is what such
 * hardware typically implements (it has dedicated x86/ARM instructions;
 * the table-driven form here models the same function).
 *
 * The guarantee the recovery path relies on: any torn 128-byte slice
 * (a mix of old and new 8-byte words) or any single flipped bit fails
 * the check, so recovery never trusts a partially-persisted record.
 */

#ifndef HOOPNVM_COMMON_CRC32_HH
#define HOOPNVM_COMMON_CRC32_HH

#include <array>
#include <cstddef>
#include <cstdint>

namespace hoopnvm
{

namespace detail
{

/** Byte-indexed lookup table for the reflected CRC-32C polynomial. */
inline const std::array<std::uint32_t, 256> &
crc32cTable()
{
    static const std::array<std::uint32_t, 256> table = [] {
        std::array<std::uint32_t, 256> t{};
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? 0x82f63b78u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
        return t;
    }();
    return table;
}

} // namespace detail

/** CRC-32C of @p len bytes at @p data, chainable via @p seed. */
inline std::uint32_t
crc32c(const void *data, std::size_t len, std::uint32_t seed = 0)
{
    const auto &table = detail::crc32cTable();
    const auto *p = static_cast<const std::uint8_t *>(data);
    std::uint32_t crc = ~seed;
    for (std::size_t i = 0; i < len; ++i)
        crc = table[(crc ^ p[i]) & 0xff] ^ (crc >> 8);
    return ~crc;
}

} // namespace hoopnvm

#endif // HOOPNVM_COMMON_CRC32_HH
