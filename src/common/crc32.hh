/**
 * @file
 * CRC-32C (Castagnoli polynomial, reflected 0x82f63b78).
 *
 * Used as the integrity check carried in the reserved bytes of HOOP
 * memory slices and OOP block headers: real NVM controllers carve ECC
 * or CRC metadata into their line formats for exactly this purpose
 * (cf. in-cache-line logging systems), and CRC-32C is what such
 * hardware typically implements (it has dedicated x86/ARM instructions;
 * both forms here compute the same function).
 *
 * The guarantee the recovery path relies on: any torn 128-byte slice
 * (a mix of old and new 8-byte words) or any single flipped bit fails
 * the check, so recovery never trusts a partially-persisted record.
 *
 * Slice encode/decode dominates large simulations (every OOP write,
 * GC scan and recovery scan checksums a 128-byte slice), so crc32c()
 * dispatches once at load time to the SSE4.2 `crc32` instruction when
 * the host has it. The instruction implements the identical reflected
 * CRC-32C polynomial, so the two paths are bit-for-bit interchangeable
 * (asserted by crc32_test).
 */

#ifndef HOOPNVM_COMMON_CRC32_HH
#define HOOPNVM_COMMON_CRC32_HH

#include <array>
#include <cstddef>
#include <cstdint>

namespace hoopnvm
{

namespace detail
{

/** Byte-indexed lookup table for the reflected CRC-32C polynomial. */
inline const std::array<std::uint32_t, 256> &
crc32cTable()
{
    static const std::array<std::uint32_t, 256> table = [] {
        std::array<std::uint32_t, 256> t{};
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? 0x82f63b78u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
        return t;
    }();
    return table;
}

/** Active implementation, resolved once before main() by host CPUID. */
extern std::uint32_t (*const crc32cImpl)(const void *, std::size_t,
                                         std::uint32_t);

} // namespace detail

/** Table-driven CRC-32C; the portable reference implementation. */
inline std::uint32_t
crc32cSoft(const void *data, std::size_t len, std::uint32_t seed = 0)
{
    const auto &table = detail::crc32cTable();
    const auto *p = static_cast<const std::uint8_t *>(data);
    std::uint32_t crc = ~seed;
    for (std::size_t i = 0; i < len; ++i)
        crc = table[(crc ^ p[i]) & 0xff] ^ (crc >> 8);
    return ~crc;
}

/** CRC-32C of @p len bytes at @p data, chainable via @p seed. */
inline std::uint32_t
crc32c(const void *data, std::size_t len, std::uint32_t seed = 0)
{
    return detail::crc32cImpl(data, len, seed);
}

} // namespace hoopnvm

#endif // HOOPNVM_COMMON_CRC32_HH
