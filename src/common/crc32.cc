/**
 * @file
 * CRC-32C implementation dispatch.
 *
 * The x86 SSE4.2 `crc32` instruction evaluates the same reflected
 * Castagnoli polynomial as the byte-table loop, including the ~seed
 * in / ~crc out chaining convention, so picking the hardware form is
 * purely an execution-speed decision — results are bit-identical.
 * Selection happens once during static initialization; callers go
 * through a function pointer with no per-call CPUID cost.
 */

#include "common/crc32.hh"

namespace hoopnvm
{
namespace detail
{
namespace
{

#if defined(__x86_64__) || defined(__i386__)

__attribute__((target("sse4.2"))) std::uint32_t
crc32cHw(const void *data, std::size_t len, std::uint32_t seed)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    std::uint64_t crc = ~seed;
    while (len >= 8) {
        std::uint64_t v;
        __builtin_memcpy(&v, p, 8);
        crc = __builtin_ia32_crc32di(crc, v);
        p += 8;
        len -= 8;
    }
    auto c = static_cast<std::uint32_t>(crc);
    while (len--)
        c = __builtin_ia32_crc32qi(c, *p++);
    return ~c;
}

#endif

std::uint32_t
crc32cDispatch(const void *data, std::size_t len, std::uint32_t seed)
{
    return crc32cSoft(data, len, seed);
}

using CrcFn = std::uint32_t (*)(const void *, std::size_t, std::uint32_t);

CrcFn
resolveCrc32c()
{
#if defined(__x86_64__) || defined(__i386__)
    if (__builtin_cpu_supports("sse4.2"))
        return crc32cHw;
#endif
    return crc32cDispatch;
}

} // namespace

std::uint32_t (*const crc32cImpl)(const void *, std::size_t, std::uint32_t) =
    resolveCrc32c();

} // namespace detail
} // namespace hoopnvm
