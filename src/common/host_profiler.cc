#include "common/host_profiler.hh"

namespace hoopnvm
{

bool HostProfiler::enabled_ = false;
std::atomic<std::uint64_t> HostProfiler::ns_[kNumComponents] = {};

const char *
HostProfiler::name(int c)
{
    switch (c) {
      case kExecute:
        return "execute";
      case kMaintenance:
        return "maintenance";
      case kGc:
        return "gc";
      case kRecovery:
        return "recovery";
      case kDrain:
        return "drain";
      case kVerify:
        return "verify";
      default:
        return "unknown";
    }
}

} // namespace hoopnvm
