/**
 * @file
 * Shared JSON string escaping.
 *
 * Every place that emits a runtime string into a JSON document must
 * route it through jsonEscape/jsonQuote (the PR 5 bench bug class:
 * workload names or fault descriptions containing quotes, backslashes
 * or control characters silently corrupt the report). hoop_lint's
 * raw-json rule enforces this; the helpers live in src/common so both
 * the library (fleet/soak/trace emitters) and the bench harness can
 * link them.
 */
#pragma once

#include <string>

namespace hoopnvm
{

/** Escape s for inclusion inside a JSON string literal (RFC 8259):
 *  backslash, double quote, and all control characters below 0x20. */
std::string jsonEscape(const std::string &s);

/** jsonEscape(s) wrapped in double quotes — a complete JSON string. */
std::string jsonQuote(const std::string &s);

} // namespace hoopnvm
