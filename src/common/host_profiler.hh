/**
 * @file
 * Opt-in host-side wall-time profiler for the bench harness.
 *
 * When a bench binary is started with `--profile`, coarse-grained
 * scoped timers at the engine's phase boundaries (transaction
 * execution, controller maintenance, GC runs, recovery replay, the
 * end-of-run drain and workload verification) accumulate wall
 * nanoseconds into process-wide atomic counters, and BenchReport
 * emits the breakdown into the bench JSON plus a stderr summary.
 *
 * Disabled (the default) the timers cost one predictable branch per
 * phase entry — no clock reads — so bench timing without the flag is
 * unaffected. Counters are process-global: with -jN cell parallelism
 * the breakdown aggregates over all cells, which is what the
 * per-component share is read for. "gc" counts every
 * GarbageCollector::run, including runs triggered inside a
 * maintenance or execute span, so components overlap and do not sum
 * to the process wall time; each is meaningful as a share of it.
 */

#ifndef HOOPNVM_COMMON_HOST_PROFILER_HH
#define HOOPNVM_COMMON_HOST_PROFILER_HH

#include <atomic>
#include <chrono>
#include <cstdint>

namespace hoopnvm
{

class HostProfiler
{
  public:
    enum Component
    {
        kExecute = 0,   ///< Workload transaction bodies (cache + ctrl)
        kMaintenance,   ///< PersistenceController::maintenance polls
        kGc,            ///< GarbageCollector::run (periodic + on-demand)
        kRecovery,      ///< Post-crash recovery replay
        kDrain,         ///< End-of-measurement finalize/drain
        kVerify,        ///< Workload result verification
        kNumComponents
    };

    static void enable() { enabled_ = true; }
    static bool enabled() { return enabled_; }

    static const char *name(int c);

    static void
    add(Component c, std::uint64_t ns)
    {
        ns_[c].fetch_add(ns, std::memory_order_relaxed);
    }

    static std::uint64_t
    totalNs(int c)
    {
        return ns_[c].load(std::memory_order_relaxed);
    }

  private:
    static bool enabled_;
    static std::atomic<std::uint64_t> ns_[kNumComponents];
};

/** RAII span: charges its lifetime to one profiler component. */
class HostTimer
{
  public:
    explicit HostTimer(HostProfiler::Component c)
        : c_(c), active_(HostProfiler::enabled())
    {
        if (active_)
            // lint: nondet-api-ok (opt-in host profiling; ticks never reach the simulation)
            t0_ = std::chrono::steady_clock::now();
    }

    ~HostTimer()
    {
        if (active_) {
            // lint: nondet-api-ok (opt-in host profiling; ticks never reach the simulation)
            const auto dt = std::chrono::steady_clock::now() - t0_;
            HostProfiler::add(
                c_, static_cast<std::uint64_t>(
                        std::chrono::duration_cast<
                            std::chrono::nanoseconds>(dt)
                            .count()));
        }
    }

    HostTimer(const HostTimer &) = delete;
    HostTimer &operator=(const HostTimer &) = delete;

  private:
    HostProfiler::Component c_;
    bool active_;
    std::chrono::steady_clock::time_point t0_;
};

} // namespace hoopnvm

#endif // HOOPNVM_COMMON_HOST_PROFILER_HH
