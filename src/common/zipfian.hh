/**
 * @file
 * Zipfian key-popularity generator, as used by YCSB.
 *
 * This follows the rejection-free algorithm from Gray et al.,
 * "Quickly Generating Billion-Record Synthetic Databases" (SIGMOD'94),
 * which is also the algorithm the YCSB reference implementation uses.
 * The paper's YCSB workload draws keys from a Zipfian distribution
 * (theta = 0.99 by default) over the key space.
 */

#ifndef HOOPNVM_COMMON_ZIPFIAN_HH
#define HOOPNVM_COMMON_ZIPFIAN_HH

#include <cstdint>

#include "common/rng.hh"

namespace hoopnvm
{

/** Zipfian-distributed integer generator over [0, n). */
class ZipfianGenerator
{
  public:
    /**
     * @param n      Size of the key space.
     * @param theta  Skew parameter in (0, 1); YCSB default is 0.99.
     * @param seed   RNG seed.
     */
    ZipfianGenerator(std::uint64_t n, double theta, std::uint64_t seed);

    /** Draw the next key in [0, n). Hot keys are the small values. */
    std::uint64_t next();

    /** Key-space size. */
    std::uint64_t itemCount() const { return items; }

  private:
    static double zeta(std::uint64_t n, double theta);

    std::uint64_t items;
    double theta;
    double zetaN;
    double zeta2;
    double alpha;
    double eta;
    Rng rng;
};

} // namespace hoopnvm

#endif // HOOPNVM_COMMON_ZIPFIAN_HH
