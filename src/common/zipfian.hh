/**
 * @file
 * Zipfian key-popularity generator, as used by YCSB.
 *
 * This follows the rejection-free algorithm from Gray et al.,
 * "Quickly Generating Billion-Record Synthetic Databases" (SIGMOD'94),
 * which is also the algorithm the YCSB reference implementation uses.
 * The paper's YCSB workload draws keys from a Zipfian distribution
 * (theta = 0.99 by default) over the key space.
 *
 * Gray's closed form maps a uniform draw through pow(., 1/(1-theta)),
 * which blows up as theta -> 1: the exponent alpha = 1/(1-theta)
 * diverges and the pow underflows to 0 for most of the unit interval,
 * collapsing nearly every draw onto item 0 long before theta reaches
 * 1.0 (and the classic harmonic case theta == 1 divides by zero
 * outright). Above kGrayThetaMax the generator therefore switches to
 * an exact inverse-CDF table (one cumulative probability per item,
 * binary-searched per draw) — slightly more memory, zero skew bias,
 * and theta == 1.0 handled exactly. Both paths renormalize from a
 * freshly computed zeta(n, theta) in the constructor, so changing the
 * item count between runs cannot leak a stale normalization constant.
 */

#ifndef HOOPNVM_COMMON_ZIPFIAN_HH
#define HOOPNVM_COMMON_ZIPFIAN_HH

#include <cstdint>
#include <vector>

#include "common/rng.hh"

namespace hoopnvm
{

/** Zipfian-distributed integer generator over [0, n). */
class ZipfianGenerator
{
  public:
    /**
     * Largest theta served by Gray's closed form; skews above it use
     * the exact inverse-CDF table. 0.995 keeps the YCSB default
     * (0.99) on the historical fast path while cutting over well
     * before the pow() underflow region.
     */
    static constexpr double kGrayThetaMax = 0.995;

    /**
     * @param n      Size of the key space (>= 1; n == 1 always draws 0).
     * @param theta  Skew parameter in [0, 1]; 0 is uniform, 1 is the
     *               classic harmonic Zipf. YCSB default is 0.99.
     * @param seed   RNG seed.
     */
    ZipfianGenerator(std::uint64_t n, double theta, std::uint64_t seed);

    /** Draw the next key in [0, n). Hot keys are the small values. */
    std::uint64_t next();

    /** Key-space size. */
    std::uint64_t itemCount() const { return items; }

    /** Exact probability of item @p i under this (n, theta) (tests). */
    double itemProbability(std::uint64_t i) const;

  private:
    static double zeta(std::uint64_t n, double theta);

    std::uint64_t items;
    double theta;
    double zetaN;
    double zeta2;
    double alpha;
    double eta;
    // Cumulative distribution, populated only on the exact-CDF path
    // (theta > kGrayThetaMax and n > 1): cdf_[i] = P(key <= i).
    std::vector<double> cdf_;
    Rng rng;
};

} // namespace hoopnvm

#endif // HOOPNVM_COMMON_ZIPFIAN_HH
