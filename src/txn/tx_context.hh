/**
 * @file
 * Per-core transactional accessor handed to workloads.
 *
 * TxContext is the programming interface the paper exposes (§III-B):
 * Tx_begin / Tx_end failure-atomic regions plus ordinary loads and
 * stores in between — no clwb/mfence, no read/write wrapping. Typed
 * helpers keep workload code readable; everything bottoms out in
 * word-granularity System accesses.
 */

#ifndef HOOPNVM_TXN_TX_CONTEXT_HH
#define HOOPNVM_TXN_TX_CONTEXT_HH

#include <cstring>
#include <type_traits>

#include "common/rng.hh"
#include "sim/system.hh"

namespace hoopnvm
{

/** RAII-less transactional accessor bound to one core. */
class TxContext
{
  public:
    TxContext(System &sys, CoreId core, std::uint64_t seed)
        : sys_(&sys), core_(core), rng_(seed)
    {
    }

    void txBegin() { sys_->txBegin(core_); }
    void txEnd() { sys_->txEnd(core_); }

    std::uint64_t load(Addr a) { return sys_->loadWord(core_, a); }
    void store(Addr a, std::uint64_t v) { sys_->storeWord(core_, a, v); }

    void
    read(Addr a, void *buf, std::size_t len)
    {
        sys_->readBytes(core_, a, buf, len);
    }

    void
    write(Addr a, const void *buf, std::size_t len)
    {
        sys_->writeBytes(core_, a, buf, len);
    }

    /** Typed timed load of a trivially-copyable, word-multiple T. */
    template <typename T>
    T
    loadT(Addr a)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        static_assert(sizeof(T) % kWordSize == 0);
        T v;
        read(a, &v, sizeof(T));
        return v;
    }

    /** Typed timed store. */
    template <typename T>
    void
    storeT(Addr a, const T &v)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        static_assert(sizeof(T) % kWordSize == 0);
        write(a, &v, sizeof(T));
    }

    Addr
    alloc(std::uint64_t size, std::uint64_t align = kWordSize)
    {
        return sys_->alloc(core_, size, align);
    }

    /** Untimed setup write (pre-existing data in NVM). */
    void
    init(Addr a, const void *buf, std::size_t len)
    {
        sys_->pokeInit(a, buf, len);
    }

    /** Untimed verification read. */
    void
    debugRead(Addr a, void *buf, std::size_t len) const
    {
        sys_->debugRead(a, buf, len);
    }

    std::uint64_t
    debugLoad(Addr a) const
    {
        return sys_->debugLoadWord(a);
    }

    /**
     * Whether @p a is a plausible home-region object address that a
     * verification walk may dereference. Structural verifiers follow
     * pointers read from a possibly-corrupt NVM image; a torn word can
     * hold garbage that would otherwise send debugLoad() out of the
     * device (fatal) instead of merely failing the check.
     */
    bool
    debugAddrOk(Addr a) const
    {
        return a >= kCacheLineSize && a % kWordSize == 0 &&
               a + kCacheLineSize <= sys_->config().homeBytes;
    }

    /**
     * Open-loop pacing: burn @p d ticks of deliberate idleness between
     * transactions (the interference suite's saturation knob). Must be
     * called outside a failure-atomic region.
     */
    void idle(Tick d) { sys_->idle(core_, d); }

    /** This core's current simulated clock. */
    Tick clock() const { return sys_->core(core_).clock(); }

    CoreId core() const { return core_; }
    Rng &rng() { return rng_; }
    System &system() { return *sys_; }

  private:
    System *sys_;
    CoreId core_;
    Rng rng_;
};

} // namespace hoopnvm

#endif // HOOPNVM_TXN_TX_CONTEXT_HH
