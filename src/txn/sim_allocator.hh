/**
 * @file
 * Bump allocator for simulated home-region memory.
 *
 * The home region is split into one arena per core so concurrently
 * running workload threads allocate disjoint memory — matching the
 * paper's setup where each thread operates on its own data structure
 * or database tables (§IV-A), with inter-transaction concurrency
 * handled by application-level locking.
 */

#ifndef HOOPNVM_TXN_SIM_ALLOCATOR_HH
#define HOOPNVM_TXN_SIM_ALLOCATOR_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace hoopnvm
{

/** Per-arena bump allocator over the home region. */
class SimAllocator
{
  public:
    /**
     * @param base     First byte of the managed range.
     * @param bytes    Size of the managed range.
     * @param n_arenas Number of equal arenas (one per core).
     */
    SimAllocator(Addr base, std::uint64_t bytes, unsigned n_arenas);

    /**
     * Allocate @p size bytes in @p arena, aligned to @p align.
     * Exhaustion is a configuration error (fatal).
     */
    Addr alloc(unsigned arena, std::uint64_t size,
               std::uint64_t align = kWordSize);

    /** Bytes allocated so far in @p arena. */
    std::uint64_t bytesUsed(unsigned arena) const;

    /** Bytes each arena can hold. */
    std::uint64_t arenaBytes() const { return arenaBytes_; }

  private:
    Addr base;
    std::uint64_t arenaBytes_;
    std::vector<Addr> cursor;
};

} // namespace hoopnvm

#endif // HOOPNVM_TXN_SIM_ALLOCATOR_HH
