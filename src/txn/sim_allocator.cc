#include "txn/sim_allocator.hh"

#include "common/logging.hh"

namespace hoopnvm
{

SimAllocator::SimAllocator(Addr base_, std::uint64_t bytes,
                           unsigned n_arenas)
    : base(base_), arenaBytes_(bytes / n_arenas)
{
    HOOP_ASSERT(n_arenas > 0, "allocator needs at least one arena");
    cursor.resize(n_arenas);
    // Skip the first line of each arena so address 0 is never handed
    // out: workload structures use 0 as their null pointer.
    for (unsigned a = 0; a < n_arenas; ++a)
        cursor[a] = base + a * arenaBytes_ + kCacheLineSize;
}

Addr
SimAllocator::alloc(unsigned arena, std::uint64_t size,
                    std::uint64_t align)
{
    HOOP_ASSERT(arena < cursor.size(), "unknown arena %u", arena);
    const Addr a = alignUp(cursor[arena], align);
    const Addr arena_end = base + (arena + 1) * arenaBytes_;
    if (a + size > arena_end) {
        // lint: fatal-in-txpath-ok (boot-time layout sizing, not an admission path; see the logging.hh fatal audit)
        HOOP_FATAL("arena %u exhausted (%llu bytes requested); "
                   "increase homeBytes",
                   arena, static_cast<unsigned long long>(size));
    }
    cursor[arena] = a + size;
    return a;
}

std::uint64_t
SimAllocator::bytesUsed(unsigned arena) const
{
    return cursor[arena] - (base + arena * arenaBytes_);
}

} // namespace hoopnvm
