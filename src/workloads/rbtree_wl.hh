/**
 * @file
 * Persistent red-black tree workload (Table III: 2-10 stores/tx).
 *
 * A full CLRS-style red-black tree lives in simulated NVM; every node
 * access is a timed load/store. Each transaction performs one insert
 * (new random key) or one update (existing key), so the store count
 * per transaction varies with rebalancing — matching the paper's
 * 2-10 stores/tx range.
 */

#ifndef HOOPNVM_WORKLOADS_RBTREE_WL_HH
#define HOOPNVM_WORKLOADS_RBTREE_WL_HH

#include <map>
#include <set>

#include "workloads/workload.hh"

namespace hoopnvm
{

/** Transactional red-black tree. */
class RbTreeWorkload : public Workload
{
  public:
    RbTreeWorkload(TxContext ctx, std::size_t value_bytes,
                   std::uint64_t key_space);

    const char *name() const override { return "rbtree"; }
    void setup() override;
    void runTransaction(std::uint64_t i) override;
    bool verify() const override;
    bool verifyStructure(std::string *why = nullptr) const override;

  private:
    // Node field offsets (node payload follows the header).
    static constexpr std::uint64_t kKey = 0;
    static constexpr std::uint64_t kLeft = 8;
    static constexpr std::uint64_t kRight = 16;
    static constexpr std::uint64_t kParent = 24;
    static constexpr std::uint64_t kColor = 32; // 0 = red, 1 = black
    static constexpr std::uint64_t kVersion = 40;
    static constexpr std::uint64_t kValue = 48;

    std::uint64_t nodeBytes() const { return kValue + valueBytes; }

    // Timed field accessors.
    std::uint64_t fld(Addr n, std::uint64_t off);
    void setFld(Addr n, std::uint64_t off, std::uint64_t v);

    Addr root();
    void setRoot(Addr n);

    void rotateLeft(Addr x);
    void rotateRight(Addr x);
    void insertFixup(Addr z);
    void insert(std::uint64_t key, std::uint64_t version);

    /** Timed search. @return node address or 0. */
    Addr search(std::uint64_t key);

    /** Untimed recursive structural check over a possibly-corrupt
     *  image: @p visited breaks pointer cycles a torn write may have
     *  formed. @return black height or -1 on violation. */
    int checkNode(Addr n, std::uint64_t lo, std::uint64_t hi,
                  std::map<std::uint64_t, std::uint64_t> &seen,
                  std::set<Addr> &visited) const;

    std::size_t valueBytes;
    std::uint64_t keySpace;
    Addr rootPtr = kInvalidAddr;

    /** Committed key -> version. */
    std::map<std::uint64_t, std::uint64_t> shadow;
};

} // namespace hoopnvm

#endif // HOOPNVM_WORKLOADS_RBTREE_WL_HH
