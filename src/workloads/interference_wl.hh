/**
 * @file
 * Mixed-role interference workload (ROADMAP item 3).
 *
 * Unlike the Table III suite — where every core runs the same loop —
 * each core here is assigned one of four traffic roles modelled on
 * pmembench's interference harness:
 *
 *  - log_append:  a log-writer transactor appending patterned records
 *                 and bumping a durable head pointer (persistence
 *                 traffic: the LogWriter of the cross-traffic mix).
 *  - point_read:  a random point-reader issuing scattered single-word
 *                 loads (latency-sensitive foreground reads).
 *  - seq_scan:    a sequential scanner streaming whole items in order
 *                 (bandwidth-hungry reads, the SequentialReader).
 *  - gc_pressure: a flusher overwriting whole items at random — the
 *                 maximal write-amplification / GC-churn generator
 *                 (the PageFlusher).
 *
 * All structures are per-core private (as everywhere in this repo);
 * the roles contend on the *shared NVM channel*, which is the point:
 * the suite measures how each persistence scheme's tail latency
 * degrades as mixed traffic saturates the channel.
 *
 * Two global knobs shape the mix (WorkloadParams):
 *  - interferenceReadMix in [0, 1]: fraction of cores given reader
 *    roles (point_read / seq_scan alternating); the rest are writers
 *    (log_append / gc_pressure alternating).
 *  - interferenceSaturation in (0, 1]: open-loop pacing target. After
 *    each transaction the core idles for active * (1 - s) / s ticks,
 *    so its duty cycle is s; at s = 1 cores run flat out.
 *
 * Per-role intensity knobs set the operations per transaction. Each
 * role records its per-transaction latency into the system StatSet
 * histogram "role_<name>_ticks" (resolved once at construction), which
 * System::metrics() surfaces as RunMetrics.roles.
 */

#ifndef HOOPNVM_WORKLOADS_INTERFERENCE_WL_HH
#define HOOPNVM_WORKLOADS_INTERFERENCE_WL_HH

#include <vector>

#include "workloads/workload.hh"

namespace hoopnvm
{

/** Traffic role of one core in the interference mix. */
enum class InterferenceRole
{
    LogAppend,
    PointRead,
    SeqScan,
    GcPressure,
};

/** Stable lower-case name ("log_append", ...) of @p role. */
const char *interferenceRoleName(InterferenceRole role);

/**
 * Deterministic role assignment: the first round(read_mix * n_cores)
 * cores are readers (point_read / seq_scan alternating by position),
 * the rest writers (log_append / gc_pressure alternating). Pure
 * function of its arguments so tests, benches and the workload itself
 * agree on the mapping.
 */
InterferenceRole interferenceRoleForCore(CoreId core, unsigned n_cores,
                                         double read_mix);

/** Intensity knobs for one interference cell (see WorkloadParams). */
struct InterferenceParams
{
    std::size_t valueBytes = 64;
    std::uint64_t scale = 4096;
    double readMix = 0.5;
    double saturation = 1.0;
    unsigned logAppendsPerTx = 4;
    unsigned pointReadsPerTx = 8;
    unsigned scanItemsPerTx = 16;
    unsigned gcOverwritesPerTx = 2;
};

/** One core's slice of the mixed-role interference mix. */
class InterferenceWorkload : public Workload
{
  public:
    InterferenceWorkload(TxContext ctx, const InterferenceParams &p);

    const char *name() const override { return "interference"; }
    void setup() override;
    void runTransaction(std::uint64_t i) override;
    bool verify() const override;

    InterferenceRole role() const { return role_; }

  private:
    Addr itemAddr(std::uint64_t idx) const;
    void runLogAppend();
    void runPointRead();
    void runSeqScan();
    void runGcPressure();

    /** Record tx latency and apply the saturation duty-cycle gap. */
    void finishTx(Tick t0);

    InterferenceParams p_;
    InterferenceRole role_;

    /** Role-aggregate per-tx latency series (shared across cores). */
    Histogram &latH_;

    Addr head_ = kInvalidAddr;  ///< head/counter word
    Addr items_ = kInvalidAddr; ///< item/slot array

    /** Committed log head (log_append) or commit counter (readers). */
    std::uint64_t shadowHead_ = 0;

    /** Committed item versions (gc_pressure only). */
    std::vector<std::uint64_t> shadowVer_;

    /** Scan cursor (seq_scan, committed). */
    std::uint64_t cursor_ = 0;

    /** Pattern mismatches observed by timed reads (must stay 0). */
    std::uint64_t readErrors_ = 0;
};

} // namespace hoopnvm

#endif // HOOPNVM_WORKLOADS_INTERFERENCE_WL_HH
