/**
 * @file
 * YCSB driver (Table III: 8-32 stores/tx, 80% writes / 20% reads,
 * Zipfian key popularity, 512 B or 1 KB key-value pairs).
 *
 * Each core runs transactions against its own KvStore shard, as in the
 * paper's N-store setup where every thread owns its tables.
 */

#ifndef HOOPNVM_WORKLOADS_YCSB_HH
#define HOOPNVM_WORKLOADS_YCSB_HH

#include <unordered_map>

#include "common/zipfian.hh"
#include "workloads/kv_store.hh"
#include "workloads/workload.hh"

namespace hoopnvm
{

/** Yahoo Cloud Serving Benchmark update-heavy driver. */
class YcsbWorkload : public Workload
{
  public:
    /**
     * @param value_bytes  Key-value pair size (512 or 1024).
     * @param records      Records per shard.
     * @param update_ratio Fraction of operations that are writes.
     * @param theta        Zipfian skew (0.99 = YCSB default).
     */
    YcsbWorkload(TxContext ctx, std::size_t value_bytes,
                 std::uint64_t records, double update_ratio,
                 double theta);

    const char *name() const override { return "ycsb"; }
    void setup() override;
    void runTransaction(std::uint64_t i) override;
    bool verify() const override;

  private:
    KvStore store;
    ZipfianGenerator zipf;
    double updateRatio;

    /** Committed key -> version. */
    std::unordered_map<std::uint64_t, std::uint64_t> shadow;
};

} // namespace hoopnvm

#endif // HOOPNVM_WORKLOADS_YCSB_HH
