/**
 * @file
 * Persistent B-tree workload (Table III: 2-12 stores/tx).
 *
 * A CLRS-style B-tree of minimum degree 4 (up to 7 keys per node) in
 * simulated NVM. Values are pointers to per-key payload records. Each
 * transaction inserts a fresh key (occasionally triggering node splits,
 * the high end of the store range) or updates an existing payload.
 */

#ifndef HOOPNVM_WORKLOADS_BTREE_WL_HH
#define HOOPNVM_WORKLOADS_BTREE_WL_HH

#include <map>
#include <set>

#include "workloads/workload.hh"

namespace hoopnvm
{

/** Transactional B-tree with out-of-node payloads. */
class BTreeWorkload : public Workload
{
  public:
    BTreeWorkload(TxContext ctx, std::size_t value_bytes,
                  std::uint64_t key_space);

    const char *name() const override { return "btree"; }
    void setup() override;
    void runTransaction(std::uint64_t i) override;
    bool verify() const override;
    bool verifyStructure(std::string *why = nullptr) const override;

  private:
    static constexpr unsigned kMinDegree = 4;           // t
    static constexpr unsigned kMaxKeys = 2 * kMinDegree - 1;

    // Node field offsets.
    static constexpr std::uint64_t kLeaf = 0;
    static constexpr std::uint64_t kCount = 8;
    static constexpr std::uint64_t kKeys = 16;                   // [7]
    static constexpr std::uint64_t kVals = kKeys + 8 * kMaxKeys; // [7]
    static constexpr std::uint64_t kKids = kVals + 8 * kMaxKeys; // [8]
    static constexpr std::uint64_t kNodeBytes = kKids + 8 * (kMaxKeys + 1);

    Addr allocNode(bool leaf);

    std::uint64_t keyAt(Addr n, unsigned i);
    std::uint64_t valAt(Addr n, unsigned i);
    Addr kidAt(Addr n, unsigned i);
    void setKeyAt(Addr n, unsigned i, std::uint64_t k);
    void setValAt(Addr n, unsigned i, std::uint64_t v);
    void setKidAt(Addr n, unsigned i, Addr kid);

    /** Split the full i-th child of @p parent. */
    void splitChild(Addr parent, unsigned i);

    /** Insert into a node known to be non-full. */
    void insertNonFull(Addr n, std::uint64_t key, Addr payload);

    void insert(std::uint64_t key, Addr payload);

    /** Timed search. @return payload address or 0. */
    Addr search(std::uint64_t key);

    /** Untimed structural walk collecting key -> payload address.
     *  @p visited breaks cycles a torn child pointer may have formed
     *  in the crash image. */
    bool collect(Addr n, std::uint64_t lo, std::uint64_t hi,
                 std::map<std::uint64_t, Addr> &out,
                 std::set<Addr> &visited) const;

    /** Recursive invariant check: ordering, occupancy, leaf depth,
     *  pointer sanity (cycles and wild addresses are violations). */
    bool checkNodeInvariants(Addr n, std::uint64_t lo, std::uint64_t hi,
                             unsigned depth, long &leaf_depth,
                             bool is_root, std::set<Addr> &visited,
                             std::string *why) const;

    std::size_t valueBytes;
    std::uint64_t keySpace;
    Addr rootPtr = kInvalidAddr;

    /** Committed key -> version. */
    std::map<std::uint64_t, std::uint64_t> shadow;
};

} // namespace hoopnvm

#endif // HOOPNVM_WORKLOADS_BTREE_WL_HH
