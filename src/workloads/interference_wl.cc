#include "workloads/interference_wl.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "workloads/value_pattern.hh"

namespace hoopnvm
{

const char *
interferenceRoleName(InterferenceRole role)
{
    switch (role) {
      case InterferenceRole::LogAppend: return "log_append";
      case InterferenceRole::PointRead: return "point_read";
      case InterferenceRole::SeqScan: return "seq_scan";
      case InterferenceRole::GcPressure: return "gc_pressure";
    }
    HOOP_PANIC("unknown interference role");
}

InterferenceRole
interferenceRoleForCore(CoreId core, unsigned n_cores, double read_mix)
{
    HOOP_ASSERT(n_cores > 0, "interference needs at least one core");
    const double clamped = std::clamp(read_mix, 0.0, 1.0);
    const auto readers = std::min<unsigned>(
        n_cores,
        static_cast<unsigned>(
            std::lround(clamped * static_cast<double>(n_cores))));
    if (core < readers) {
        return core % 2 == 0 ? InterferenceRole::PointRead
                             : InterferenceRole::SeqScan;
    }
    return (core - readers) % 2 == 0 ? InterferenceRole::LogAppend
                                     : InterferenceRole::GcPressure;
}

InterferenceWorkload::InterferenceWorkload(TxContext ctx_,
                                           const InterferenceParams &p)
    : Workload(std::move(ctx_)), p_(p),
      role_(interferenceRoleForCore(
          ctx.core(), ctx.system().config().numCores, p.readMix)),
      latH_(ctx.system().stats().histogram(
          std::string("role_") + interferenceRoleName(role_) +
          "_ticks"))
{
    HOOP_ASSERT(p_.valueBytes % kWordSize == 0,
                "item size must be a word multiple");
    HOOP_ASSERT(p_.scale > 0, "interference needs a non-empty array");
    HOOP_ASSERT(p_.saturation > 0.0 && p_.saturation <= 1.0,
                "saturation must be in (0, 1]");
}

Addr
InterferenceWorkload::itemAddr(std::uint64_t idx) const
{
    return items_ + idx * p_.valueBytes;
}

void
InterferenceWorkload::setup()
{
    head_ = ctx.alloc(kWordSize, kCacheLineSize);
    items_ = ctx.alloc(p_.scale * p_.valueBytes, kCacheLineSize);
    const std::uint64_t zero = 0;
    ctx.init(head_, &zero, kWordSize);

    // Readers and the GC-pressure flusher start from a populated
    // array (version-0 pattern per item); the log starts empty.
    if (role_ != InterferenceRole::LogAppend) {
        std::vector<std::uint8_t> buf(p_.valueBytes);
        for (std::uint64_t i = 0; i < p_.scale; ++i) {
            fillPattern(buf.data(), p_.valueBytes, i, 0);
            ctx.init(itemAddr(i), buf.data(), p_.valueBytes);
        }
    }
    if (role_ == InterferenceRole::GcPressure)
        shadowVer_.assign(p_.scale, 0);
}

void
InterferenceWorkload::runTransaction(std::uint64_t)
{
    switch (role_) {
      case InterferenceRole::LogAppend: runLogAppend(); return;
      case InterferenceRole::PointRead: runPointRead(); return;
      case InterferenceRole::SeqScan: runSeqScan(); return;
      case InterferenceRole::GcPressure: runGcPressure(); return;
    }
}

void
InterferenceWorkload::finishTx(Tick t0)
{
    const Tick active = ctx.clock() - t0;
    latH_.record(active);
    // Open-loop pacing: a duty cycle of `saturation` means idling
    // active * (1 - s) / s between transactions. The gap scales with
    // the transaction's own cost, so a scheme that slows under
    // contention does not also get a longer rest (the offered load is
    // the controlled variable, not the completion rate).
    if (p_.saturation < 1.0 && active > 0) {
        const auto gap = static_cast<Tick>(
            static_cast<double>(active) * (1.0 - p_.saturation) /
            p_.saturation);
        if (gap > 0)
            ctx.idle(gap);
    }
}

void
InterferenceWorkload::runLogAppend()
{
    const Tick t0 = ctx.clock();
    const unsigned n = std::max(1u, p_.logAppendsPerTx);
    std::vector<std::uint8_t> buf(p_.valueBytes);
    ctx.txBegin();
    for (unsigned k = 0; k < n; ++k) {
        const std::uint64_t seq = shadowHead_ + k;
        fillPattern(buf.data(), p_.valueBytes, seq, 0);
        ctx.write(itemAddr(seq % p_.scale), buf.data(), p_.valueBytes);
    }
    ctx.store(head_, shadowHead_ + n);
    commitTx([this, n] { shadowHead_ += n; });
    finishTx(t0);
}

void
InterferenceWorkload::runPointRead()
{
    const Tick t0 = ctx.clock();
    const unsigned n = std::max(1u, p_.pointReadsPerTx);
    const std::size_t item_words = p_.valueBytes / kWordSize;
    ctx.txBegin();
    for (unsigned k = 0; k < n; ++k) {
        const std::uint64_t idx = ctx.rng().nextBounded(p_.scale);
        const std::uint64_t w = ctx.rng().nextBounded(item_words);
        const std::uint64_t got =
            ctx.load(itemAddr(idx) + w * kWordSize);
        if (got != patternWord(idx, 0, w * kWordSize))
            ++readErrors_;
    }
    // One durable word per tx keeps the commit non-empty (an all-read
    // region would exercise nothing of the persistence scheme).
    ctx.store(head_, shadowHead_ + 1);
    commitTx([this] { ++shadowHead_; });
    finishTx(t0);
}

void
InterferenceWorkload::runSeqScan()
{
    const Tick t0 = ctx.clock();
    const unsigned n = std::max(1u, p_.scanItemsPerTx);
    std::vector<std::uint8_t> buf(p_.valueBytes);
    ctx.txBegin();
    for (unsigned k = 0; k < n; ++k) {
        const std::uint64_t idx = (cursor_ + k) % p_.scale;
        ctx.read(itemAddr(idx), buf.data(), p_.valueBytes);
        if (!checkPattern(buf.data(), p_.valueBytes, idx, 0))
            ++readErrors_;
    }
    ctx.store(head_, shadowHead_ + 1);
    commitTx([this, n] {
        ++shadowHead_;
        cursor_ = (cursor_ + n) % p_.scale;
    });
    finishTx(t0);
}

void
InterferenceWorkload::runGcPressure()
{
    const Tick t0 = ctx.clock();
    const unsigned n = std::max(1u, p_.gcOverwritesPerTx);
    std::vector<std::uint8_t> buf(p_.valueBytes);
    // Whole-item overwrites at random indexes: every byte is dirtied,
    // the maximal write-amplification / GC-churn traffic. The same
    // index may be drawn twice in one tx, so versions are resolved
    // against the staged updates first.
    std::vector<std::pair<std::uint64_t, std::uint64_t>> updates;
    updates.reserve(n);
    ctx.txBegin();
    for (unsigned k = 0; k < n; ++k) {
        const std::uint64_t idx = ctx.rng().nextBounded(p_.scale);
        std::uint64_t ver = shadowVer_[idx] + 1;
        for (const auto &u : updates) {
            if (u.first == idx)
                ver = u.second + 1;
        }
        fillPattern(buf.data(), p_.valueBytes, idx, ver);
        ctx.write(itemAddr(idx), buf.data(), p_.valueBytes);
        updates.emplace_back(idx, ver);
    }
    ctx.store(head_, shadowHead_ + 1);
    commitTx([this, updates = std::move(updates)] {
        ++shadowHead_;
        for (const auto &u : updates)
            shadowVer_[u.first] = u.second;
    });
    finishTx(t0);
}

bool
InterferenceWorkload::verify() const
{
    if (readErrors_ != 0)
        return false;
    if (ctx.debugLoad(head_) != shadowHead_)
        return false;
    std::vector<std::uint8_t> buf(p_.valueBytes);
    switch (role_) {
      case InterferenceRole::LogAppend: {
        // The last min(head, scale) records are live; older slots were
        // overwritten by the wrap-around.
        const std::uint64_t live = std::min(shadowHead_, p_.scale);
        for (std::uint64_t seq = shadowHead_ - live; seq < shadowHead_;
             ++seq) {
            ctx.debugRead(itemAddr(seq % p_.scale), buf.data(),
                          p_.valueBytes);
            if (!checkPattern(buf.data(), p_.valueBytes, seq, 0))
                return false;
        }
        return true;
      }
      case InterferenceRole::PointRead:
      case InterferenceRole::SeqScan: {
        for (std::uint64_t i = 0; i < p_.scale; ++i) {
            ctx.debugRead(itemAddr(i), buf.data(), p_.valueBytes);
            if (!checkPattern(buf.data(), p_.valueBytes, i, 0))
                return false;
        }
        return true;
      }
      case InterferenceRole::GcPressure: {
        for (std::uint64_t i = 0; i < p_.scale; ++i) {
            ctx.debugRead(itemAddr(i), buf.data(), p_.valueBytes);
            if (!checkPattern(buf.data(), p_.valueBytes, i,
                              shadowVer_[i]))
                return false;
        }
        return true;
      }
    }
    return false;
}

} // namespace hoopnvm
