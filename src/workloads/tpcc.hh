/**
 * @file
 * TPC-C new-order workload (Table III: 10-35 stores/tx, 40% writes /
 * 60% reads).
 *
 * The paper runs TPC-C's new-order transactions (the most write-
 * intensive of the mix) through N-store with per-thread tables. This
 * driver reproduces the new-order footprint over simulated-NVM row
 * stores: read warehouse/district/customer, increment the district's
 * next-order id, insert an order row, and for each of 5-15 order lines
 * read the item row, update the stock row and insert an order-line row.
 */

#ifndef HOOPNVM_WORKLOADS_TPCC_HH
#define HOOPNVM_WORKLOADS_TPCC_HH

#include <unordered_map>
#include <vector>

#include "workloads/workload.hh"

namespace hoopnvm
{

/** TPC-C new-order driver over per-core row stores. */
class TpccWorkload : public Workload
{
  public:
    /** @param items Items (and stock rows) per warehouse shard. */
    TpccWorkload(TxContext ctx, std::uint64_t items,
                 std::uint64_t max_orders);

    const char *name() const override { return "tpcc"; }
    void setup() override;
    void runTransaction(std::uint64_t i) override;
    bool verify() const override;

  private:
    // Row sizes (word multiples, modelled on N-store's schemas).
    static constexpr std::size_t kDistrictBytes = 64;
    static constexpr std::size_t kItemBytes = 64;
    static constexpr std::size_t kStockBytes = 64;
    static constexpr std::size_t kOrderBytes = 32;
    static constexpr std::size_t kOrderLineBytes = 48;

    Addr stockAddr(std::uint64_t item) const;
    Addr orderAddr(std::uint64_t o_id) const;
    Addr orderLineAddr(std::uint64_t ol_seq) const;

    std::uint64_t items;
    std::uint64_t maxOrders;

    Addr district = kInvalidAddr;
    Addr itemTable = kInvalidAddr;
    Addr stockTable = kInvalidAddr;
    Addr orderTable = kInvalidAddr;
    Addr orderLineTable = kInvalidAddr;

    // Committed state.
    std::uint64_t nextOid = 1;
    std::uint64_t nextOlSeq = 0;
    std::unordered_map<std::uint64_t, std::uint64_t> stockQty;
    std::vector<std::uint64_t> orderOlCounts;
};

} // namespace hoopnvm

#endif // HOOPNVM_WORKLOADS_TPCC_HH
