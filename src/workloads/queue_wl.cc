#include "workloads/queue_wl.hh"

#include "common/logging.hh"
#include "workloads/value_pattern.hh"

namespace hoopnvm
{

QueueWorkload::QueueWorkload(TxContext ctx_, std::size_t value_bytes,
                             std::uint64_t capacity_)
    : Workload(std::move(ctx_)), valueBytes(value_bytes),
      capacity(capacity_)
{
    HOOP_ASSERT(valueBytes % kWordSize == 0,
                "item size must be a word multiple");
}

Addr
QueueWorkload::slotAddr(std::uint64_t seq) const
{
    return slotsBase + (seq % capacity) * valueBytes;
}

void
QueueWorkload::setup()
{
    headAddr = ctx.alloc(kWordSize, kCacheLineSize);
    tailAddr = ctx.alloc(kWordSize);
    slotsBase = ctx.alloc(capacity * valueBytes, kCacheLineSize);
    committedHead = 0;
    committedTail = 0;
    shadow.clear();
}

void
QueueWorkload::runTransaction(std::uint64_t)
{
    std::uint64_t head = committedHead;
    std::uint64_t tail = committedTail;

    ctx.txBegin();
    std::vector<std::uint8_t> buf(valueBytes);
    for (unsigned op = 0; op < 4; ++op) {
        const bool enqueue =
            (op % 2 == 0) || tail == head; // alternate, never underflow
        if (enqueue && tail - head < capacity) {
            fillPattern(buf.data(), valueBytes, tail, 0);
            ctx.write(slotAddr(tail), buf.data(), valueBytes);
            ++tail;
            ctx.store(tailAddr, tail);
        } else if (tail > head) {
            // Dequeue: read the item, then advance head.
            ctx.read(slotAddr(head), buf.data(), valueBytes);
            ++head;
            ctx.store(headAddr, head);
        }
    }
    commitTx([this, head, tail] {
        while (committedTail < tail) {
            shadow.push_back(committedTail);
            ++committedTail;
        }
        while (committedHead < head) {
            shadow.pop_front();
            ++committedHead;
        }
    });
}

bool
QueueWorkload::verify() const
{
    if (ctx.debugLoad(headAddr) != committedHead)
        return false;
    if (ctx.debugLoad(tailAddr) != committedTail)
        return false;
    std::vector<std::uint8_t> buf(valueBytes);
    for (std::uint64_t seq : shadow) {
        ctx.debugRead(slotAddr(seq), buf.data(), valueBytes);
        if (!checkPattern(buf.data(), valueBytes, seq, 0))
            return false;
    }
    return true;
}

bool
QueueWorkload::verifyStructure(std::string *why) const
{
    // FIFO continuity from the NVM image alone: the pointers must
    // delimit a legal window and every live slot must hold the item
    // written for its sequence number.
    const std::uint64_t head = ctx.debugLoad(headAddr);
    const std::uint64_t tail = ctx.debugLoad(tailAddr);
    if (head > tail) {
        if (why)
            *why = "queue: head " + std::to_string(head) +
                   " > tail " + std::to_string(tail);
        return false;
    }
    if (tail - head > capacity) {
        if (why)
            *why = "queue: occupancy " + std::to_string(tail - head) +
                   " exceeds capacity " + std::to_string(capacity);
        return false;
    }
    std::vector<std::uint8_t> buf(valueBytes);
    for (std::uint64_t seq = head; seq < tail; ++seq) {
        ctx.debugRead(slotAddr(seq), buf.data(), valueBytes);
        if (!checkPattern(buf.data(), valueBytes, seq, 0)) {
            if (why)
                *why = "queue: slot for seq " + std::to_string(seq) +
                       " holds a foreign or torn item";
            return false;
        }
    }
    return true;
}

} // namespace hoopnvm
