/**
 * @file
 * Workload interface (the paper's Table III benchmark suite).
 *
 * A Workload instance is bound to one core and owns a private data
 * structure in that core's arena (the paper runs one structure or
 * database shard per thread). Host-side *shadow* state mirrors only
 * committed transactions, so verify() checks both functional
 * correctness during normal runs and atomic durability after a crash
 * plus recovery.
 */

#ifndef HOOPNVM_WORKLOADS_WORKLOAD_HH
#define HOOPNVM_WORKLOADS_WORKLOAD_HH

#include <functional>
#include <memory>
#include <string>

#include "txn/tx_context.hh"

namespace hoopnvm
{

/** One core's workload instance. */
class Workload
{
  public:
    explicit Workload(TxContext ctx_)
        : ctx(std::move(ctx_))
    {
    }

    virtual ~Workload() = default;

    virtual const char *name() const = 0;

    /** Build the initial data set (untimed pokes allowed). */
    virtual void setup() = 0;

    /** Execute the i-th transaction. */
    virtual void runTransaction(std::uint64_t i) = 0;

    /**
     * Compare the simulated structure against the committed shadow.
     * @return true when they agree.
     */
    virtual bool verify() const = 0;

  protected:
    TxContext ctx;
};

/** Builds one workload instance per core. */
using WorkloadFactory =
    std::function<std::unique_ptr<Workload>(System &, CoreId)>;

} // namespace hoopnvm

#endif // HOOPNVM_WORKLOADS_WORKLOAD_HH
