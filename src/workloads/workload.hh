/**
 * @file
 * Workload interface (the paper's Table III benchmark suite).
 *
 * A Workload instance is bound to one core and owns a private data
 * structure in that core's arena (the paper runs one structure or
 * database shard per thread). Host-side *shadow* state mirrors only
 * committed transactions, so verify() checks both functional
 * correctness during normal runs and atomic durability after a crash
 * plus recovery.
 */

#ifndef HOOPNVM_WORKLOADS_WORKLOAD_HH
#define HOOPNVM_WORKLOADS_WORKLOAD_HH

#include <functional>
#include <memory>
#include <string>

#include "txn/tx_context.hh"

namespace hoopnvm
{

/** One core's workload instance. */
class Workload
{
  public:
    explicit Workload(TxContext ctx_)
        : ctx(std::move(ctx_))
    {
    }

    virtual ~Workload() = default;

    virtual const char *name() const = 0;

    /** Build the initial data set (untimed pokes allowed). */
    virtual void setup() = 0;

    /** Execute the i-th transaction. */
    virtual void runTransaction(std::uint64_t i) = 0;

    /**
     * Compare the simulated structure against the committed shadow.
     * @return true when they agree.
     */
    virtual bool verify() const = 0;

    /**
     * Check structural invariants of the NVM-resident data structure
     * itself (ordering, occupancy, chain integrity, ...) independent of
     * the shadow. Default: no invariants beyond verify().
     * @param why receives a human-readable reason on failure.
     */
    virtual bool verifyStructure(std::string *why = nullptr) const
    {
        (void)why;
        return true;
    }

    /**
     * A commit whose shadow update is still pending: the simulated
     * txEnd() finished but the crash-exploration engine has not yet
     * decided whether the commit became durable. After a crash *at* the
     * commit record both outcomes are legal; the checker resolves the
     * ambiguity by trying verify() with and without the pending update.
     */
    bool hasPendingShadow() const { return bool(pendingShadow_); }

    /** Apply the staged shadow mutation of the last commitTx(). */
    void applyPendingShadow()
    {
        if (pendingShadow_) {
            pendingShadow_();
            pendingShadow_ = nullptr;
        }
    }

    /** Discard the staged shadow mutation (commit did not survive). */
    void dropPendingShadow() { pendingShadow_ = nullptr; }

  protected:
    /**
     * Commit the open transaction and stage @p shadow_update as the
     * matching shadow mutation. In normal runs the update applies
     * immediately after txEnd(); if txEnd() throws (a scheduled
     * SimCrash), the update stays pending for the checker to resolve.
     */
    void commitTx(std::function<void()> shadow_update)
    {
        pendingShadow_ = std::move(shadow_update);
        ctx.txEnd();
        applyPendingShadow();
    }

    TxContext ctx;

  private:
    std::function<void()> pendingShadow_;
};

/** Builds one workload instance per core. */
using WorkloadFactory =
    std::function<std::unique_ptr<Workload>(System &, CoreId)>;

} // namespace hoopnvm

#endif // HOOPNVM_WORKLOADS_WORKLOAD_HH
