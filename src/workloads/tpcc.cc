#include "workloads/tpcc.hh"

#include "common/logging.hh"
#include "workloads/value_pattern.hh"

namespace hoopnvm
{

namespace
{
constexpr std::uint64_t kInitialStock = 1000000;
} // namespace

TpccWorkload::TpccWorkload(TxContext ctx_, std::uint64_t items_,
                           std::uint64_t max_orders)
    : Workload(std::move(ctx_)), items(items_), maxOrders(max_orders)
{
}

Addr
TpccWorkload::stockAddr(std::uint64_t item) const
{
    return stockTable + item * kStockBytes;
}

Addr
TpccWorkload::orderAddr(std::uint64_t o_id) const
{
    return orderTable + (o_id % maxOrders) * kOrderBytes;
}

Addr
TpccWorkload::orderLineAddr(std::uint64_t ol_seq) const
{
    return orderLineTable + (ol_seq % (maxOrders * 15)) *
                                kOrderLineBytes;
}

void
TpccWorkload::setup()
{
    district = ctx.alloc(kDistrictBytes, kCacheLineSize);
    itemTable = ctx.alloc(items * kItemBytes, kCacheLineSize);
    stockTable = ctx.alloc(items * kStockBytes, kCacheLineSize);
    orderTable = ctx.alloc(maxOrders * kOrderBytes, kCacheLineSize);
    orderLineTable =
        ctx.alloc(maxOrders * 15 * kOrderLineBytes, kCacheLineSize);

    // District row: word 0 holds next_o_id.
    const std::uint64_t one = 1;
    ctx.init(district, &one, kWordSize);

    std::vector<std::uint8_t> buf(kItemBytes);
    for (std::uint64_t i = 0; i < items; ++i) {
        fillPattern(buf.data(), kItemBytes, i, 7); // price etc.
        ctx.init(itemTable + i * kItemBytes, buf.data(), kItemBytes);
        // Stock row: word 0 = quantity, word 1 = ytd.
        const std::uint64_t qty = kInitialStock;
        ctx.init(stockAddr(i), &qty, kWordSize);
    }

    nextOid = 1;
    nextOlSeq = 0;
    stockQty.clear();
    orderOlCounts.clear();
}

void
TpccWorkload::runTransaction(std::uint64_t)
{
    const unsigned ol_cnt =
        static_cast<unsigned>(ctx.rng().nextRange(5, 15));
    std::vector<std::uint64_t> line_items(ol_cnt);
    for (unsigned l = 0; l < ol_cnt; ++l)
        line_items[l] = ctx.rng().nextBounded(items);

    ctx.txBegin();

    // Read district and claim the next order id.
    const std::uint64_t o_id = ctx.load(district);
    ctx.store(district, o_id + 1);

    // Read customer/warehouse context (modelled as district row reads).
    (void)ctx.load(district + 8);
    (void)ctx.load(district + 16);

    // Insert the order row: o_id and line count.
    ctx.store(orderAddr(o_id), o_id);
    ctx.store(orderAddr(o_id) + 8, ol_cnt);

    std::uint64_t ol_seq = nextOlSeq;
    for (unsigned l = 0; l < ol_cnt; ++l) {
        const std::uint64_t item = line_items[l];
        // Read the item row (price lookup).
        (void)ctx.load(itemTable + item * kItemBytes);
        (void)ctx.load(itemTable + item * kItemBytes + 8);
        // Update the stock row.
        const std::uint64_t qty = ctx.load(stockAddr(item));
        ctx.store(stockAddr(item), qty - 1);
        const std::uint64_t ytd = ctx.load(stockAddr(item) + 8);
        ctx.store(stockAddr(item) + 8, ytd + 1);
        // Insert the order line.
        const Addr ol = orderLineAddr(ol_seq++);
        ctx.store(ol, o_id);
        ctx.store(ol + 8, item);
        ctx.store(ol + 16, 1);                      // quantity
        ctx.store(ol + 24, mixHash(o_id * 16 + l)); // amount
    }

    commitTx([this, o_id, ol_seq, line_items, ol_cnt] {
        nextOid = o_id + 1;
        nextOlSeq = ol_seq;
        for (unsigned l = 0; l < ol_cnt; ++l) {
            auto it = stockQty.find(line_items[l]);
            if (it == stockQty.end())
                stockQty[line_items[l]] = kInitialStock - 1;
            else
                --it->second;
        }
        orderOlCounts.push_back(ol_cnt);
    });
}

bool
TpccWorkload::verify() const
{
    if (ctx.debugLoad(district) != nextOid)
        return false;
    // lint: unordered-iter-ok (read-only verification over untimed debug loads; all entries must pass)
    for (const auto &kv : stockQty) {
        if (ctx.debugLoad(stockAddr(kv.first)) != kv.second)
            return false;
        const std::uint64_t expected_ytd = kInitialStock - kv.second;
        if (ctx.debugLoad(stockAddr(kv.first) + 8) != expected_ytd)
            return false;
    }
    // Check the most recent orders still resident in the ring.
    const std::uint64_t n = orderOlCounts.size();
    const std::uint64_t first =
        n > maxOrders ? n - maxOrders : 0;
    for (std::uint64_t i = first; i < n; ++i) {
        const std::uint64_t o_id = 1 + i;
        if (ctx.debugLoad(orderAddr(o_id)) != o_id)
            return false;
        if (ctx.debugLoad(orderAddr(o_id) + 8) != orderOlCounts[i])
            return false;
    }
    return true;
}

} // namespace hoopnvm
