/**
 * @file
 * Persistent vector workload (Table III: 8 stores/tx, 100% writes).
 *
 * A fixed-capacity vector of items lives in simulated NVM: a size word
 * followed by the item array. Each transaction performs eight item
 * operations — mostly in-place updates with occasional appends —
 * matching the paper's insert/update mix.
 */

#ifndef HOOPNVM_WORKLOADS_VECTOR_WL_HH
#define HOOPNVM_WORKLOADS_VECTOR_WL_HH

#include <vector>

#include "workloads/workload.hh"

namespace hoopnvm
{

/** Transactional vector of fixed-size items. */
class VectorWorkload : public Workload
{
  public:
    /**
     * @param value_bytes   Item payload size (64 or 1024 in the paper).
     * @param initial_items Items present before the measured run.
     */
    VectorWorkload(TxContext ctx, std::size_t value_bytes,
                   std::uint64_t initial_items);

    const char *name() const override { return "vector"; }
    void setup() override;
    void runTransaction(std::uint64_t i) override;
    bool verify() const override;

  private:
    Addr itemAddr(std::uint64_t idx) const;

    std::size_t valueBytes;
    std::uint64_t initialItems;
    std::uint64_t capacity = 0;
    Addr base = kInvalidAddr;  ///< size word
    Addr items = kInvalidAddr; ///< item array

    /** Committed versions, index -> version. */
    std::vector<std::uint64_t> shadow;
};

} // namespace hoopnvm

#endif // HOOPNVM_WORKLOADS_VECTOR_WL_HH
