/**
 * @file
 * Deterministic value payloads for workload items.
 *
 * Workload items are filled with a pattern derived from (key, version),
 * so the committed shadow state only needs to remember versions: any
 * item's expected bytes are recomputable for verification, including
 * after crash recovery.
 */

#ifndef HOOPNVM_WORKLOADS_VALUE_PATTERN_HH
#define HOOPNVM_WORKLOADS_VALUE_PATTERN_HH

#include <cstring>
#include <vector>

#include "common/hash.hh"
#include "common/types.hh"

namespace hoopnvm
{

/** Fill @p len bytes (word multiple) with the (key, version) pattern. */
inline void
fillPattern(std::uint8_t *buf, std::size_t len, std::uint64_t key,
            std::uint64_t version)
{
    for (std::size_t off = 0; off < len; off += kWordSize) {
        const std::uint64_t w =
            mixHash(key * 0x10001 + version * 0x101 + off);
        std::memcpy(buf + off, &w, kWordSize);
    }
}

/** True if @p buf matches the (key, version) pattern. */
inline bool
checkPattern(const std::uint8_t *buf, std::size_t len, std::uint64_t key,
             std::uint64_t version)
{
    for (std::size_t off = 0; off < len; off += kWordSize) {
        const std::uint64_t w =
            mixHash(key * 0x10001 + version * 0x101 + off);
        std::uint64_t got;
        std::memcpy(&got, buf + off, kWordSize);
        if (got != w)
            return false;
    }
    return true;
}

/** The pattern word for byte offset @p off of (key, version). */
inline std::uint64_t
patternWord(std::uint64_t key, std::uint64_t version, std::size_t off)
{
    return mixHash(key * 0x10001 + version * 0x101 + off);
}

/**
 * Region-granular updates: an item of @p item_words words is divided
 * into `stride = item_words / 8` interleaved regions (region r covers
 * words {r, r+stride, ...}); version v rewrites region v % stride.
 * This reproduces the paper's fine-granularity update behaviour
 * (§III-C: "many application workloads update data at a fine
 * granularity"): for 1 KB items the eight updated words scatter over
 * eight different cache lines.
 */
inline std::size_t
regionStride(std::size_t item_words)
{
    return item_words >= 8 ? item_words / 8 : 1;
}

/** Last version <= @p ver that touched region @p r (0 if none). */
inline std::uint64_t
lastVersionTouching(std::size_t r, std::size_t stride,
                    std::uint64_t ver)
{
    if (ver == 0 || stride <= 1)
        return ver;
    // Versions 1..ver hit regions (v % stride).
    const std::uint64_t m = ver % stride;
    const std::uint64_t rr = static_cast<std::uint64_t>(r);
    if (rr == m)
        return ver;
    const std::uint64_t back = (m + stride - rr) % stride;
    return ver >= back ? ver - back : 0;
}

/** Expected word @p w of an item at (key, version) under region
 *  updates. */
inline std::uint64_t
expectedWord(std::uint64_t key, std::uint64_t ver, std::size_t w,
             std::size_t item_words)
{
    const std::size_t stride = regionStride(item_words);
    const std::uint64_t v =
        lastVersionTouching(w % stride, stride, ver);
    return patternWord(key, v, w * kWordSize);
}

/** Convenience: pattern bytes as a vector. */
inline std::vector<std::uint8_t>
patternBytes(std::size_t len, std::uint64_t key, std::uint64_t version)
{
    std::vector<std::uint8_t> v(len);
    fillPattern(v.data(), len, key, version);
    return v;
}

} // namespace hoopnvm

#endif // HOOPNVM_WORKLOADS_VALUE_PATTERN_HH
