/**
 * @file
 * Persistent hashmap workload (Table III: 8 stores/tx, 100% writes).
 *
 * An open-addressing (linear probing) hash table in simulated NVM.
 * Buckets hold an 8-byte key (0 = empty), an 8-byte version and the
 * value payload. Each transaction inserts or updates eight entries.
 */

#ifndef HOOPNVM_WORKLOADS_HASHMAP_WL_HH
#define HOOPNVM_WORKLOADS_HASHMAP_WL_HH

#include <unordered_map>

#include "workloads/workload.hh"

namespace hoopnvm
{

/** Transactional open-addressing hash table. */
class HashmapWorkload : public Workload
{
  public:
    /**
     * @param value_bytes Payload per entry.
     * @param key_space   Distinct keys drawn (table holds 2x slots).
     */
    HashmapWorkload(TxContext ctx, std::size_t value_bytes,
                    std::uint64_t key_space);

    const char *name() const override { return "hashmap"; }
    void setup() override;
    void runTransaction(std::uint64_t i) override;
    bool verify() const override;
    bool verifyStructure(std::string *why = nullptr) const override;

  private:
    std::size_t bucketBytes() const { return 16 + valueBytes; }
    Addr bucketAddr(std::uint64_t slot) const;

    /**
     * Probe for @p key with timed loads.
     * @return Slot holding the key, or the empty slot to insert into.
     */
    std::uint64_t probe(std::uint64_t key, bool &found);

    std::size_t valueBytes;
    std::uint64_t keySpace;
    std::uint64_t slots = 0;
    Addr table = kInvalidAddr;

    /** Committed key -> version. */
    std::unordered_map<std::uint64_t, std::uint64_t> shadow;
};

} // namespace hoopnvm

#endif // HOOPNVM_WORKLOADS_HASHMAP_WL_HH
