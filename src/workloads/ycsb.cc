#include "workloads/ycsb.hh"

#include "workloads/value_pattern.hh"

namespace hoopnvm
{

YcsbWorkload::YcsbWorkload(TxContext ctx_, std::size_t value_bytes,
                           std::uint64_t records, double update_ratio,
                           double theta)
    : Workload(std::move(ctx_)),
      store(&ctx, records, value_bytes),
      zipf(records, theta, 0xb0bacafe + ctx.core()),
      updateRatio(update_ratio)
{
}

void
YcsbWorkload::setup()
{
    store.create();
    std::vector<std::uint8_t> buf(store.recordBytes());
    for (std::uint64_t k = 0; k < store.records(); ++k) {
        fillPattern(buf.data(), buf.size(), k, 0);
        store.seed(k, buf.data());
    }
    shadow.clear();
}

void
YcsbWorkload::runTransaction(std::uint64_t)
{
    // Each transaction performs a handful of field-granular record
    // operations (YCSB updates rewrite one field, not the whole
    // value): an update writes one interleaved region — eight
    // scattered words — and a read fetches one region. With 1-4
    // operations at 80% updates this lands in Table III's 8-32
    // stores/tx band.
    const unsigned ops =
        static_cast<unsigned>(ctx.rng().nextRange(1, 4));
    const std::size_t item_words = store.recordBytes() / kWordSize;
    const std::size_t stride = regionStride(item_words);
    std::vector<std::pair<std::uint64_t, std::uint64_t>> staged;
    staged.reserve(ops);

    ctx.txBegin();
    for (unsigned op = 0; op < ops; ++op) {
        const std::uint64_t key = zipf.next();
        if (ctx.rng().nextBool(updateRatio)) {
            auto it = shadow.find(key);
            std::uint64_t ver = it == shadow.end() ? 1 : it->second + 1;
            // Later ops in this tx may bump the same key again.
            for (const auto &s : staged) {
                if (s.first == key)
                    ver = s.second + 1;
            }
            store.putRegion(key, ver);
            staged.emplace_back(key, ver);
        } else {
            store.getRegion(key,
                            ctx.rng().nextBounded(stride));
        }
    }
    commitTx([this, staged] {
        for (const auto &s : staged)
            shadow[s.first] = s.second;
    });
}

bool
YcsbWorkload::verify() const
{
    const std::size_t item_words = store.recordBytes() / kWordSize;
    // lint: unordered-iter-ok (read-only verification over untimed debug loads; all entries must pass)
    for (const auto &kv : shadow) {
        for (std::size_t w = 0; w < item_words; ++w) {
            if (store.debugWord(kv.first, w) !=
                expectedWord(kv.first, kv.second, w, item_words)) {
                return false;
            }
        }
    }
    return true;
}

} // namespace hoopnvm
