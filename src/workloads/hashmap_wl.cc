#include "workloads/hashmap_wl.hh"

#include "common/hash.hh"
#include "common/logging.hh"
#include "workloads/value_pattern.hh"

namespace hoopnvm
{

HashmapWorkload::HashmapWorkload(TxContext ctx_, std::size_t value_bytes,
                                 std::uint64_t key_space)
    : Workload(std::move(ctx_)), valueBytes(value_bytes),
      keySpace(key_space)
{
    HOOP_ASSERT(valueBytes % kWordSize == 0,
                "value size must be a word multiple");
}

Addr
HashmapWorkload::bucketAddr(std::uint64_t slot) const
{
    return table + slot * bucketBytes();
}

void
HashmapWorkload::setup()
{
    // Keep the load factor at 1/2 so probing stays short.
    slots = 1;
    while (slots < keySpace * 2)
        slots <<= 1;
    table = ctx.alloc(slots * bucketBytes(), kCacheLineSize);
    // Buckets start zeroed (key 0 = empty); NVM reads as zero.
    shadow.clear();
}

std::uint64_t
HashmapWorkload::probe(std::uint64_t key, bool &found)
{
    std::uint64_t slot = mixHash(key) & (slots - 1);
    for (std::uint64_t i = 0; i < slots; ++i) {
        const std::uint64_t k = ctx.load(bucketAddr(slot));
        if (k == key) {
            found = true;
            return slot;
        }
        if (k == 0) {
            found = false;
            return slot;
        }
        slot = (slot + 1) & (slots - 1);
    }
    // lint: fatal-in-txpath-ok (workload sizing bug, not a controller admission path; see the logging.hh fatal audit)
    HOOP_FATAL("hash table full (key space too large for table)");
}

void
HashmapWorkload::runTransaction(std::uint64_t)
{
    // One insert or update per transaction. Inserts write the key and
    // full value; updates rewrite one interleaved region (eight
    // scattered words) plus the version word, matching Table III's
    // 8 stores/tx at fine granularity.
    const std::size_t item_words = valueBytes / kWordSize;
    const std::size_t stride = regionStride(item_words);

    // Keys are 1-based so 0 can mark an empty bucket.
    const std::uint64_t key = 1 + ctx.rng().nextBounded(keySpace);
    auto it = shadow.find(key);
    const std::uint64_t ver = it == shadow.end() ? 0 : it->second + 1;

    ctx.txBegin();
    bool found = false;
    const std::uint64_t slot = probe(key, found);
    if (ver == 0) {
        HOOP_ASSERT(!found, "fresh key already present");
        std::vector<std::uint8_t> buf(valueBytes);
        fillPattern(buf.data(), valueBytes, key, 0);
        ctx.store(bucketAddr(slot), key);
        ctx.store(bucketAddr(slot) + 8, 0);
        ctx.write(bucketAddr(slot) + 16, buf.data(), valueBytes);
    } else {
        HOOP_ASSERT(found, "committed key missing");
        ctx.store(bucketAddr(slot) + 8, ver);
        const std::size_t region = ver % stride;
        for (std::size_t j = region; j < item_words; j += stride) {
            ctx.store(bucketAddr(slot) + 16 + j * kWordSize,
                      patternWord(key, ver, j * kWordSize));
        }
    }
    commitTx([this, key, ver] { shadow[key] = ver; });
}

bool
HashmapWorkload::verify() const
{
    // lint: unordered-iter-ok (read-only verification over untimed debug loads; all entries must pass)
    for (const auto &kv : shadow) {
        // Probe with untimed reads.
        std::uint64_t slot = mixHash(kv.first) & (slots - 1);
        bool located = false;
        for (std::uint64_t i = 0; i < slots; ++i) {
            const std::uint64_t k = ctx.debugLoad(bucketAddr(slot));
            if (k == kv.first) {
                located = true;
                break;
            }
            if (k == 0)
                return false;
            slot = (slot + 1) & (slots - 1);
        }
        if (!located)
            return false;
        if (ctx.debugLoad(bucketAddr(slot) + 8) != kv.second)
            return false;
        const std::size_t item_words = valueBytes / kWordSize;
        for (std::size_t w = 0; w < item_words; ++w) {
            if (ctx.debugLoad(bucketAddr(slot) + 16 + w * kWordSize) !=
                expectedWord(kv.first, kv.second, w, item_words)) {
                return false;
            }
        }
    }
    return true;
}

bool
HashmapWorkload::verifyStructure(std::string *why) const
{
    // Chain integrity from the NVM image alone: every occupied bucket
    // must be reachable by linear probing from its key's home slot
    // (no empty bucket may interrupt the probe path), keys must be
    // unique and in range, and each payload must be internally
    // consistent with its stored version.
    const std::size_t item_words = valueBytes / kWordSize;
    std::unordered_map<std::uint64_t, std::uint64_t> seen;
    for (std::uint64_t slot = 0; slot < slots; ++slot) {
        const std::uint64_t key = ctx.debugLoad(bucketAddr(slot));
        if (key == 0)
            continue;
        if (key > keySpace) {
            if (why)
                *why = "hashmap: slot " + std::to_string(slot) +
                       " holds out-of-range key " + std::to_string(key);
            return false;
        }
        auto ins = seen.emplace(key, slot);
        if (!ins.second) {
            if (why)
                *why = "hashmap: key " + std::to_string(key) +
                       " duplicated in slots " +
                       std::to_string(ins.first->second) + " and " +
                       std::to_string(slot);
            return false;
        }
        // Walk the probe path; an empty bucket before this slot would
        // make the key unreachable by lookups.
        std::uint64_t s = mixHash(key) & (slots - 1);
        while (s != slot) {
            if (ctx.debugLoad(bucketAddr(s)) == 0) {
                if (why)
                    *why = "hashmap: key " + std::to_string(key) +
                           " in slot " + std::to_string(slot) +
                           " unreachable (empty bucket breaks its "
                           "probe chain at slot " + std::to_string(s) +
                           ")";
                return false;
            }
            s = (s + 1) & (slots - 1);
        }
        const std::uint64_t ver = ctx.debugLoad(bucketAddr(slot) + 8);
        for (std::size_t w = 0; w < item_words; ++w) {
            if (ctx.debugLoad(bucketAddr(slot) + 16 + w * kWordSize) !=
                expectedWord(key, ver, w, item_words)) {
                if (why)
                    *why = "hashmap: key " + std::to_string(key) +
                           " version " + std::to_string(ver) +
                           " has a torn payload at word " +
                           std::to_string(w);
                return false;
            }
        }
    }
    return true;
}

} // namespace hoopnvm
