#include "workloads/rbtree_wl.hh"

#include "common/logging.hh"
#include "workloads/value_pattern.hh"

namespace hoopnvm
{

namespace
{
constexpr std::uint64_t kRed = 0;
constexpr std::uint64_t kBlack = 1;
} // namespace

RbTreeWorkload::RbTreeWorkload(TxContext ctx_, std::size_t value_bytes,
                               std::uint64_t key_space)
    : Workload(std::move(ctx_)), valueBytes(value_bytes),
      keySpace(key_space)
{
}

std::uint64_t
RbTreeWorkload::fld(Addr n, std::uint64_t off)
{
    return ctx.load(n + off);
}

void
RbTreeWorkload::setFld(Addr n, std::uint64_t off, std::uint64_t v)
{
    ctx.store(n + off, v);
}

Addr
RbTreeWorkload::root()
{
    return ctx.load(rootPtr);
}

void
RbTreeWorkload::setRoot(Addr n)
{
    ctx.store(rootPtr, n);
}

void
RbTreeWorkload::setup()
{
    rootPtr = ctx.alloc(kWordSize, kCacheLineSize);
    shadow.clear();
}

void
RbTreeWorkload::rotateLeft(Addr x)
{
    const Addr y = fld(x, kRight);
    const Addr yl = fld(y, kLeft);
    setFld(x, kRight, yl);
    if (yl)
        setFld(yl, kParent, x);
    const Addr xp = fld(x, kParent);
    setFld(y, kParent, xp);
    if (!xp)
        setRoot(y);
    else if (fld(xp, kLeft) == x)
        setFld(xp, kLeft, y);
    else
        setFld(xp, kRight, y);
    setFld(y, kLeft, x);
    setFld(x, kParent, y);
}

void
RbTreeWorkload::rotateRight(Addr x)
{
    const Addr y = fld(x, kLeft);
    const Addr yr = fld(y, kRight);
    setFld(x, kLeft, yr);
    if (yr)
        setFld(yr, kParent, x);
    const Addr xp = fld(x, kParent);
    setFld(y, kParent, xp);
    if (!xp)
        setRoot(y);
    else if (fld(xp, kRight) == x)
        setFld(xp, kRight, y);
    else
        setFld(xp, kLeft, y);
    setFld(y, kRight, x);
    setFld(x, kParent, y);
}

void
RbTreeWorkload::insertFixup(Addr z)
{
    while (true) {
        const Addr zp = fld(z, kParent);
        if (!zp || fld(zp, kColor) == kBlack)
            break;
        const Addr zpp = fld(zp, kParent);
        if (fld(zpp, kLeft) == zp) {
            const Addr y = fld(zpp, kRight);
            if (y && fld(y, kColor) == kRed) {
                setFld(zp, kColor, kBlack);
                setFld(y, kColor, kBlack);
                setFld(zpp, kColor, kRed);
                z = zpp;
            } else {
                if (fld(zp, kRight) == z) {
                    z = zp;
                    rotateLeft(z);
                }
                const Addr p = fld(z, kParent);
                const Addr pp = fld(p, kParent);
                setFld(p, kColor, kBlack);
                setFld(pp, kColor, kRed);
                rotateRight(pp);
            }
        } else {
            const Addr y = fld(zpp, kLeft);
            if (y && fld(y, kColor) == kRed) {
                setFld(zp, kColor, kBlack);
                setFld(y, kColor, kBlack);
                setFld(zpp, kColor, kRed);
                z = zpp;
            } else {
                if (fld(zp, kLeft) == z) {
                    z = zp;
                    rotateRight(z);
                }
                const Addr p = fld(z, kParent);
                const Addr pp = fld(p, kParent);
                setFld(p, kColor, kBlack);
                setFld(pp, kColor, kRed);
                rotateLeft(pp);
            }
        }
    }
    const Addr r = root();
    if (r && fld(r, kColor) != kBlack)
        setFld(r, kColor, kBlack);
}

void
RbTreeWorkload::insert(std::uint64_t key, std::uint64_t version)
{
    const Addr z = ctx.alloc(nodeBytes(), kCacheLineSize);
    std::vector<std::uint8_t> buf(valueBytes);
    fillPattern(buf.data(), valueBytes, key, version);

    Addr y = 0;
    Addr x = root();
    while (x) {
        y = x;
        x = key < fld(x, kKey) ? fld(x, kLeft) : fld(x, kRight);
    }

    setFld(z, kKey, key);
    setFld(z, kLeft, 0);
    setFld(z, kRight, 0);
    setFld(z, kParent, y);
    setFld(z, kColor, kRed);
    setFld(z, kVersion, version);
    ctx.write(z + kValue, buf.data(), valueBytes);

    if (!y)
        setRoot(z);
    else if (key < fld(y, kKey))
        setFld(y, kLeft, z);
    else
        setFld(y, kRight, z);

    insertFixup(z);
}

Addr
RbTreeWorkload::search(std::uint64_t key)
{
    Addr x = root();
    while (x) {
        const std::uint64_t k = fld(x, kKey);
        if (k == key)
            return x;
        x = key < k ? fld(x, kLeft) : fld(x, kRight);
    }
    return 0;
}

void
RbTreeWorkload::runTransaction(std::uint64_t)
{
    // 70% inserts of fresh keys, 30% updates of existing ones.
    const bool update =
        !shadow.empty() &&
        (ctx.rng().nextBool(0.3) || shadow.size() >= keySpace / 2);

    if (update) {
        const std::uint64_t pick = ctx.rng().nextBounded(shadow.size());
        auto it = shadow.begin();
        std::advance(it, static_cast<long>(pick));
        const std::uint64_t key = it->first;
        const std::uint64_t ver = it->second + 1;

        ctx.txBegin();
        const Addr n = search(key);
        HOOP_ASSERT(n != 0, "committed key missing from tree");
        // Fine-granularity update: bump the version and rewrite the
        // value's first two words (Table III: 2-10 stores/tx).
        setFld(n, kVersion, ver);
        setFld(n, kValue, patternWord(key, ver, 0));
        setFld(n, kValue + 8, patternWord(key, ver, 8));
        commitTx([it, ver] { it->second = ver; });
        return;
    }

    // Fresh key (keys are 1-based; retry on collision).
    std::uint64_t key;
    do {
        key = 1 + ctx.rng().nextBounded(keySpace);
    } while (shadow.contains(key));

    ctx.txBegin();
    insert(key, 0);
    commitTx([this, key] { shadow[key] = 0; });
}

int
RbTreeWorkload::checkNode(Addr n, std::uint64_t lo, std::uint64_t hi,
                          std::map<std::uint64_t, std::uint64_t> &seen,
                          std::set<Addr> &visited) const
{
    if (!n)
        return 1;
    // The walk runs over a possibly-corrupt NVM image: a torn child
    // pointer can point anywhere, including back into the tree. Reject
    // wild addresses before dereferencing them and cycles before they
    // overflow the stack — both are structural violations, not crashes.
    if (!ctx.debugAddrOk(n) || !visited.insert(n).second)
        return -1;
    const std::uint64_t key = ctx.debugLoad(n + kKey);
    if (key < lo || key > hi)
        return -1;
    const std::uint64_t color = ctx.debugLoad(n + kColor);
    const Addr l = ctx.debugLoad(n + kLeft);
    const Addr r = ctx.debugLoad(n + kRight);
    if (color == kRed) {
        if ((l && ctx.debugLoad(l + kColor) == kRed) ||
            (r && ctx.debugLoad(r + kColor) == kRed)) {
            return -1; // red-red violation
        }
    }
    const int lh = checkNode(l, lo, key, seen, visited);
    const int rh = checkNode(r, key, hi, seen, visited);
    if (lh < 0 || rh < 0 || lh != rh)
        return -1;
    seen[key] = ctx.debugLoad(n + kVersion);
    return lh + (color == kBlack ? 1 : 0);
}

bool
RbTreeWorkload::verifyStructure(std::string *why) const
{
    // Red-black properties from the NVM image alone: black root, no
    // red-red edge, equal black height on every path, BST ordering.
    std::map<std::uint64_t, std::uint64_t> seen;
    std::set<Addr> visited;
    const Addr r = ctx.debugLoad(rootPtr);
    if (r && !ctx.debugAddrOk(r)) {
        if (why)
            *why = "rbtree: root pointer is wild";
        return false;
    }
    if (r && ctx.debugLoad(r + kColor) != kBlack) {
        if (why)
            *why = "rbtree: root is red";
        return false;
    }
    if (checkNode(r, 0, ~std::uint64_t{0}, seen, visited) < 0) {
        if (why)
            *why = "rbtree: ordering, red-red, or black-height "
                   "violation";
        return false;
    }
    return true;
}

bool
RbTreeWorkload::verify() const
{
    std::map<std::uint64_t, std::uint64_t> seen;
    std::set<Addr> visited;
    const Addr r = ctx.debugLoad(rootPtr);
    if (r && !ctx.debugAddrOk(r))
        return false;
    if (r && ctx.debugLoad(r + kColor) != kBlack)
        return false;
    if (checkNode(r, 0, ~std::uint64_t{0}, seen, visited) < 0)
        return false;
    if (seen != shadow)
        return false;

    // Check payloads through untimed reads.
    for (const auto &kv : shadow) {
        // Untimed search.
        Addr x = r;
        while (x) {
            const std::uint64_t k = ctx.debugLoad(x + kKey);
            if (k == kv.first)
                break;
            x = kv.first < k ? ctx.debugLoad(x + kLeft)
                             : ctx.debugLoad(x + kRight);
        }
        if (!x)
            return false;
        // Words 0-1 carry the latest update; the rest keep the insert
        // pattern (version 0).
        if (ctx.debugLoad(x + kValue) !=
            patternWord(kv.first, kv.second, 0))
            return false;
        if (valueBytes >= 16 &&
            ctx.debugLoad(x + kValue + 8) !=
                patternWord(kv.first, kv.second, 8))
            return false;
        for (std::size_t off = 16; off < valueBytes; off += kWordSize) {
            if (ctx.debugLoad(x + kValue + off) !=
                patternWord(kv.first, 0, off))
                return false;
        }
    }
    return true;
}

} // namespace hoopnvm
