#include "workloads/btree_wl.hh"

#include "common/logging.hh"
#include "workloads/value_pattern.hh"

namespace hoopnvm
{

BTreeWorkload::BTreeWorkload(TxContext ctx_, std::size_t value_bytes,
                             std::uint64_t key_space)
    : Workload(std::move(ctx_)), valueBytes(value_bytes),
      keySpace(key_space)
{
}

Addr
BTreeWorkload::allocNode(bool leaf)
{
    const Addr n = ctx.alloc(kNodeBytes, kCacheLineSize);
    ctx.store(n + kLeaf, leaf ? 1 : 0);
    ctx.store(n + kCount, 0);
    return n;
}

std::uint64_t
BTreeWorkload::keyAt(Addr n, unsigned i)
{
    return ctx.load(n + kKeys + 8 * i);
}

std::uint64_t
BTreeWorkload::valAt(Addr n, unsigned i)
{
    return ctx.load(n + kVals + 8 * i);
}

Addr
BTreeWorkload::kidAt(Addr n, unsigned i)
{
    return ctx.load(n + kKids + 8 * i);
}

void
BTreeWorkload::setKeyAt(Addr n, unsigned i, std::uint64_t k)
{
    ctx.store(n + kKeys + 8 * i, k);
}

void
BTreeWorkload::setValAt(Addr n, unsigned i, std::uint64_t v)
{
    ctx.store(n + kVals + 8 * i, v);
}

void
BTreeWorkload::setKidAt(Addr n, unsigned i, Addr kid)
{
    ctx.store(n + kKids + 8 * i, kid);
}

void
BTreeWorkload::setup()
{
    rootPtr = ctx.alloc(kWordSize, kCacheLineSize);
    shadow.clear();
}

void
BTreeWorkload::splitChild(Addr parent, unsigned i)
{
    const Addr full = kidAt(parent, i);
    const bool leaf = ctx.load(full + kLeaf) != 0;
    const Addr fresh = allocNode(leaf);
    constexpr unsigned t = kMinDegree;

    // Move the upper t-1 keys (and t children) into the fresh node.
    for (unsigned j = 0; j < t - 1; ++j) {
        setKeyAt(fresh, j, keyAt(full, j + t));
        setValAt(fresh, j, valAt(full, j + t));
    }
    if (!leaf) {
        for (unsigned j = 0; j < t; ++j)
            setKidAt(fresh, j, kidAt(full, j + t));
    }
    ctx.store(fresh + kCount, t - 1);
    ctx.store(full + kCount, t - 1);

    // Shift the parent's keys/children right and link the fresh node.
    const unsigned pc =
        static_cast<unsigned>(ctx.load(parent + kCount));
    for (unsigned j = pc; j > i; --j) {
        setKeyAt(parent, j, keyAt(parent, j - 1));
        setValAt(parent, j, valAt(parent, j - 1));
        setKidAt(parent, j + 1, kidAt(parent, j));
    }
    setKidAt(parent, i + 1, fresh);
    setKeyAt(parent, i, keyAt(full, t - 1));
    setValAt(parent, i, valAt(full, t - 1));
    ctx.store(parent + kCount, pc + 1);
}

void
BTreeWorkload::insertNonFull(Addr n, std::uint64_t key, Addr payload)
{
    while (true) {
        int i = static_cast<int>(ctx.load(n + kCount)) - 1;
        if (ctx.load(n + kLeaf)) {
            // Shift larger keys right and place the new one.
            while (i >= 0 && key < keyAt(n, static_cast<unsigned>(i))) {
                setKeyAt(n, static_cast<unsigned>(i + 1),
                         keyAt(n, static_cast<unsigned>(i)));
                setValAt(n, static_cast<unsigned>(i + 1),
                         valAt(n, static_cast<unsigned>(i)));
                --i;
            }
            setKeyAt(n, static_cast<unsigned>(i + 1), key);
            setValAt(n, static_cast<unsigned>(i + 1), payload);
            ctx.store(n + kCount, ctx.load(n + kCount) + 1);
            return;
        }
        while (i >= 0 && key < keyAt(n, static_cast<unsigned>(i)))
            --i;
        unsigned child = static_cast<unsigned>(i + 1);
        Addr c = kidAt(n, child);
        if (ctx.load(c + kCount) == kMaxKeys) {
            splitChild(n, child);
            if (key > keyAt(n, child))
                ++child;
            c = kidAt(n, child);
        }
        n = c;
    }
}

void
BTreeWorkload::insert(std::uint64_t key, Addr payload)
{
    Addr r = ctx.load(rootPtr);
    if (!r) {
        r = allocNode(true);
        ctx.store(rootPtr, r);
    }
    if (ctx.load(r + kCount) == kMaxKeys) {
        const Addr s = allocNode(false);
        setKidAt(s, 0, r);
        ctx.store(rootPtr, s);
        splitChild(s, 0);
        insertNonFull(s, key, payload);
        return;
    }
    insertNonFull(r, key, payload);
}

Addr
BTreeWorkload::search(std::uint64_t key)
{
    Addr n = ctx.load(rootPtr);
    while (n) {
        const unsigned count =
            static_cast<unsigned>(ctx.load(n + kCount));
        unsigned i = 0;
        while (i < count && key > keyAt(n, i))
            ++i;
        if (i < count && keyAt(n, i) == key)
            return valAt(n, i);
        if (ctx.load(n + kLeaf))
            return 0;
        n = kidAt(n, i);
    }
    return 0;
}

void
BTreeWorkload::runTransaction(std::uint64_t)
{
    const bool update =
        !shadow.empty() &&
        (ctx.rng().nextBool(0.3) || shadow.size() >= keySpace / 2);
    std::vector<std::uint8_t> buf(valueBytes);

    if (update) {
        const std::uint64_t pick = ctx.rng().nextBounded(shadow.size());
        auto it = shadow.begin();
        std::advance(it, static_cast<long>(pick));
        const std::uint64_t key = it->first;
        const std::uint64_t ver = it->second + 1;

        ctx.txBegin();
        const Addr payload = search(key);
        HOOP_ASSERT(payload != 0, "committed key missing from B-tree");
        // Fine-granularity update: version plus the first two payload
        // words (Table III: 2-12 stores/tx).
        ctx.store(payload, ver);
        ctx.store(payload + kWordSize, patternWord(key, ver, 0));
        if (valueBytes >= 16)
            ctx.store(payload + 2 * kWordSize,
                      patternWord(key, ver, 8));
        commitTx([it, ver] { it->second = ver; });
        return;
    }

    std::uint64_t key;
    do {
        key = 1 + ctx.rng().nextBounded(keySpace);
    } while (shadow.contains(key));

    ctx.txBegin();
    const Addr payload =
        ctx.alloc(kWordSize + valueBytes, kCacheLineSize);
    ctx.store(payload, 0);
    fillPattern(buf.data(), valueBytes, key, 0);
    ctx.write(payload + kWordSize, buf.data(), valueBytes);
    insert(key, payload);
    commitTx([this, key] { shadow[key] = 0; });
}

bool
BTreeWorkload::collect(Addr n, std::uint64_t lo, std::uint64_t hi,
                       std::map<std::uint64_t, Addr> &out,
                       std::set<Addr> &visited) const
{
    if (!n)
        return true;
    // Wild or cyclic child pointers (torn crash image) fail the walk
    // instead of dereferencing garbage or recursing forever.
    if (!ctx.debugAddrOk(n) || !visited.insert(n).second)
        return false;
    const bool leaf = ctx.debugLoad(n + kLeaf) != 0;
    const unsigned count =
        static_cast<unsigned>(ctx.debugLoad(n + kCount));
    if (count > kMaxKeys)
        return false;
    std::uint64_t prev = lo;
    for (unsigned i = 0; i < count; ++i) {
        const std::uint64_t key = ctx.debugLoad(n + kKeys + 8 * i);
        if (key < prev || key > hi)
            return false;
        if (!leaf &&
            !collect(ctx.debugLoad(n + kKids + 8 * i), prev, key, out,
                     visited))
            return false;
        out[key] = ctx.debugLoad(n + kVals + 8 * i);
        prev = key;
    }
    if (!leaf &&
        !collect(ctx.debugLoad(n + kKids + 8 * count), prev, hi, out,
                 visited))
        return false;
    return true;
}

bool
BTreeWorkload::checkNodeInvariants(Addr n, std::uint64_t lo,
                                   std::uint64_t hi, unsigned depth,
                                   long &leaf_depth, bool is_root,
                                   std::set<Addr> &visited,
                                   std::string *why) const
{
    if (!ctx.debugAddrOk(n) || !visited.insert(n).second) {
        if (why)
            *why = "btree: wild or cyclic node pointer";
        return false;
    }
    const bool leaf = ctx.debugLoad(n + kLeaf) != 0;
    const unsigned count =
        static_cast<unsigned>(ctx.debugLoad(n + kCount));
    if (count > kMaxKeys) {
        if (why)
            *why = "btree: node overfull (count " +
                   std::to_string(count) + " > " +
                   std::to_string(kMaxKeys) + ")";
        return false;
    }
    if (!is_root && count < kMinDegree - 1) {
        if (why)
            *why = "btree: non-root node underfull (count " +
                   std::to_string(count) + " < " +
                   std::to_string(kMinDegree - 1) + ")";
        return false;
    }
    if (is_root && !leaf && count == 0) {
        if (why)
            *why = "btree: internal root with zero keys";
        return false;
    }
    if (leaf) {
        if (leaf_depth < 0)
            leaf_depth = static_cast<long>(depth);
        else if (leaf_depth != static_cast<long>(depth)) {
            if (why)
                *why = "btree: leaves at unequal depths " +
                       std::to_string(leaf_depth) + " and " +
                       std::to_string(depth);
            return false;
        }
    }
    std::uint64_t prev = lo;
    for (unsigned i = 0; i < count; ++i) {
        const std::uint64_t key = ctx.debugLoad(n + kKeys + 8 * i);
        if (key <= prev || key >= hi) {
            if (why)
                *why = "btree: key " + std::to_string(key) +
                       " violates ordering bounds (" +
                       std::to_string(prev) + ", " +
                       std::to_string(hi) + ")";
            return false;
        }
        if (!leaf &&
            !checkNodeInvariants(ctx.debugLoad(n + kKids + 8 * i), prev,
                                 key, depth + 1, leaf_depth, false,
                                 visited, why))
            return false;
        prev = key;
    }
    if (!leaf &&
        !checkNodeInvariants(ctx.debugLoad(n + kKids + 8 * count), prev,
                             hi, depth + 1, leaf_depth, false, visited,
                             why))
        return false;
    return true;
}

bool
BTreeWorkload::verifyStructure(std::string *why) const
{
    // Classic B-tree invariants from the NVM image alone: strict key
    // ordering, per-node occupancy bounds, and uniform leaf depth.
    // Keys are 1-based so exclusive bounds (0, ~0) cover the root.
    const Addr root = ctx.debugLoad(rootPtr);
    if (!root)
        return true;
    long leaf_depth = -1;
    std::set<Addr> visited;
    return checkNodeInvariants(root, 0, ~std::uint64_t{0}, 0,
                               leaf_depth, true, visited, why);
}

bool
BTreeWorkload::verify() const
{
    std::map<std::uint64_t, Addr> found;
    std::set<Addr> visited;
    if (!collect(ctx.debugLoad(rootPtr), 0, ~std::uint64_t{0}, found,
                 visited))
        return false;
    if (found.size() != shadow.size())
        return false;
    for (const auto &kv : shadow) {
        auto it = found.find(kv.first);
        if (it == found.end())
            return false;
        if (ctx.debugLoad(it->second) != kv.second)
            return false;
        // Words 0-1 carry the latest update; the rest keep the insert
        // pattern (version 0).
        if (ctx.debugLoad(it->second + kWordSize) !=
            patternWord(kv.first, kv.second, 0))
            return false;
        if (valueBytes >= 16 &&
            ctx.debugLoad(it->second + 2 * kWordSize) !=
                patternWord(kv.first, kv.second, 8))
            return false;
        for (std::size_t off = 16; off < valueBytes; off += kWordSize) {
            if (ctx.debugLoad(it->second + kWordSize + off) !=
                patternWord(kv.first, 0, off))
                return false;
        }
    }
    return true;
}

} // namespace hoopnvm
