#include "workloads/registry.hh"

#include "common/host_profiler.hh"
#include "common/logging.hh"
#include "sim/clock_tracker.hh"
#include "workloads/btree_wl.hh"
#include "workloads/hashmap_wl.hh"
#include "workloads/queue_wl.hh"
#include "workloads/rbtree_wl.hh"
#include "workloads/interference_wl.hh"
#include "workloads/tpcc.hh"
#include "workloads/vector_wl.hh"
#include "workloads/ycsb.hh"

namespace hoopnvm
{

namespace
{

TxContext
contextFor(System &sys, CoreId core)
{
    return TxContext(sys, core,
                     sys.config().seed * 7919 + core * 104729 + 1);
}

} // namespace

WorkloadFactory
makeWorkload(const std::string &name, const WorkloadParams &p)
{
    if (name == "vector") {
        return [p](System &sys, CoreId core) {
            return std::make_unique<VectorWorkload>(
                contextFor(sys, core), p.valueBytes, p.scale);
        };
    }
    if (name == "hashmap") {
        return [p](System &sys, CoreId core) {
            return std::make_unique<HashmapWorkload>(
                contextFor(sys, core), p.valueBytes, p.scale);
        };
    }
    if (name == "queue") {
        return [p](System &sys, CoreId core) {
            return std::make_unique<QueueWorkload>(
                contextFor(sys, core), p.valueBytes, p.scale);
        };
    }
    if (name == "rbtree") {
        return [p](System &sys, CoreId core) {
            return std::make_unique<RbTreeWorkload>(
                contextFor(sys, core), p.valueBytes, p.scale * 4);
        };
    }
    if (name == "btree") {
        return [p](System &sys, CoreId core) {
            return std::make_unique<BTreeWorkload>(
                contextFor(sys, core), p.valueBytes, p.scale * 4);
        };
    }
    if (name == "ycsb") {
        return [p](System &sys, CoreId core) {
            return std::make_unique<YcsbWorkload>(
                contextFor(sys, core), p.valueBytes, p.scale,
                p.ycsbUpdateRatio, p.ycsbTheta);
        };
    }
    if (name == "interference") {
        InterferenceParams ip;
        ip.valueBytes = p.valueBytes;
        ip.scale = p.scale;
        ip.readMix = p.interferenceReadMix;
        ip.saturation = p.interferenceSaturation;
        ip.logAppendsPerTx = p.roleLogAppendsPerTx;
        ip.pointReadsPerTx = p.rolePointReadsPerTx;
        ip.scanItemsPerTx = p.roleScanItemsPerTx;
        ip.gcOverwritesPerTx = p.roleGcOverwritesPerTx;
        return [ip](System &sys, CoreId core) {
            return std::make_unique<InterferenceWorkload>(
                contextFor(sys, core), ip);
        };
    }
    if (name == "tpcc") {
        return [p](System &sys, CoreId core) {
            return std::make_unique<TpccWorkload>(
                contextFor(sys, core), p.scale, p.scale);
        };
    }
    // lint: fatal-in-txpath-ok (config-time lookup of a workload name, not an admission path; see the logging.hh fatal audit)
    HOOP_FATAL("unknown workload '%s'", name.c_str());
}

std::vector<WorkloadSpec>
syntheticSuite(const WorkloadParams &p)
{
    std::vector<WorkloadSpec> suite;
    for (const char *name :
         {"vector", "hashmap", "queue", "rbtree", "btree"}) {
        suite.push_back({name, makeWorkload(name, p)});
    }
    return suite;
}

std::vector<WorkloadSpec>
fullSuite(const WorkloadParams &p)
{
    std::vector<WorkloadSpec> suite = syntheticSuite(p);
    suite.push_back({"ycsb", makeWorkload("ycsb", p)});
    suite.push_back({"tpcc", makeWorkload("tpcc", p)});
    return suite;
}

RunOutcome
runWorkload(System &sys, const WorkloadFactory &factory,
            std::uint64_t tx_per_core)
{
    const unsigned n_cores = sys.config().numCores;
    std::vector<std::unique_ptr<Workload>> workloads;
    workloads.reserve(n_cores);
    for (unsigned c = 0; c < n_cores; ++c) {
        workloads.push_back(factory(sys, c));
        workloads.back()->setup();
    }

    sys.beginMeasurement();
    std::vector<std::uint64_t> done(n_cores, 0);
    std::uint64_t remaining = tx_per_core * n_cores;

    // Next-core selection. The fast path keeps the runnable cores'
    // clocks in an incremental min-tracker (finished cores drop out
    // via disable()); its argMin() returns the lowest-indexed minimum,
    // matching the reference scan's tie-break exactly, so both paths
    // execute transactions in the identical order
    // (clock_tracker_test.cc asserts the equivalence on randomized
    // sequences). A transaction only advances the clock of the core it
    // runs on, so re-arming just that slot keeps the tracker exact.
    const bool fast = sys.config().fastPath;
    ClockTracker runnable(fast ? n_cores : 0);
    if (fast) {
        for (unsigned c = 0; c < n_cores; ++c)
            runnable.set(c, sys.core(c).clock());
    }

    while (remaining > 0) {
        // Advance the core that is furthest behind in simulated time.
        unsigned next = n_cores;
        if (fast) {
            next = static_cast<unsigned>(runnable.argMin());
        } else {
            Tick best = ~Tick{0};
            for (unsigned c = 0; c < n_cores; ++c) {
                if (done[c] >= tx_per_core)
                    continue;
                if (sys.core(c).clock() < best) {
                    best = sys.core(c).clock();
                    next = c;
                }
            }
        }
        HOOP_ASSERT(next < n_cores, "no runnable core");
        {
            HostTimer ht(HostProfiler::kExecute);
            workloads[next]->runTransaction(done[next]);
        }
        ++done[next];
        --remaining;
        if (fast) {
            if (done[next] >= tx_per_core)
                runnable.disable(next);
            else
                runnable.set(next, sys.core(next).clock());
        }
        {
            HostTimer ht(HostProfiler::kMaintenance);
            sys.maintenance();
        }
    }
    {
        HostTimer ht(HostProfiler::kDrain);
        sys.finalize();
    }

    RunOutcome out;
    out.metrics = sys.metrics();
    out.verified = true;
    {
        HostTimer ht(HostProfiler::kVerify);
        // The run is finalized: nothing mutates simulated state during
        // verification, so batched debug reads are safe.
        sys.caches().beginDebugBatch();
        for (const auto &wl : workloads)
            out.verified = out.verified && wl->verify();
        sys.caches().endDebugBatch();
    }
    return out;
}

} // namespace hoopnvm
