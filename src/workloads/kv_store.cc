#include "workloads/kv_store.hh"

#include "common/logging.hh"
#include "workloads/value_pattern.hh"

namespace hoopnvm
{

KvStore::KvStore(TxContext *ctx_, std::uint64_t records,
                 std::size_t record_bytes)
    : ctx(ctx_), records_(records), recordBytes_(record_bytes)
{
    HOOP_ASSERT(recordBytes_ % kWordSize == 0,
                "record size must be a word multiple");
}

void
KvStore::create()
{
    base = ctx->alloc(records_ * recordBytes_, kCacheLineSize);
}

Addr
KvStore::slotAddr(std::uint64_t key) const
{
    HOOP_ASSERT(key < records_, "key %llu out of range",
                static_cast<unsigned long long>(key));
    return base + key * recordBytes_;
}

void
KvStore::seed(std::uint64_t key, const void *payload)
{
    ctx->init(slotAddr(key), payload, recordBytes_);
}

void
KvStore::get(std::uint64_t key, void *payload)
{
    ctx->read(slotAddr(key), payload, recordBytes_);
}

void
KvStore::put(std::uint64_t key, const void *payload)
{
    ctx->write(slotAddr(key), payload, recordBytes_);
}

void
KvStore::putRegion(std::uint64_t key, std::uint64_t version)
{
    const std::size_t item_words = recordBytes_ / kWordSize;
    const std::size_t stride = regionStride(item_words);
    const std::size_t region = version % stride;
    for (std::size_t j = region; j < item_words; j += stride) {
        ctx->store(slotAddr(key) + j * kWordSize,
                   patternWord(key, version, j * kWordSize));
    }
}

void
KvStore::getRegion(std::uint64_t key, std::size_t r)
{
    const std::size_t item_words = recordBytes_ / kWordSize;
    const std::size_t stride = regionStride(item_words);
    for (std::size_t j = r % stride; j < item_words; j += stride)
        (void)ctx->load(slotAddr(key) + j * kWordSize);
}

void
KvStore::debugGet(std::uint64_t key, void *payload) const
{
    ctx->debugRead(slotAddr(key), payload, recordBytes_);
}

std::uint64_t
KvStore::debugWord(std::uint64_t key, std::size_t w) const
{
    return ctx->debugLoad(slotAddr(key) + w * kWordSize);
}

} // namespace hoopnvm
