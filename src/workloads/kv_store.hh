/**
 * @file
 * A minimal transactional record store (the N-store stand-in).
 *
 * The paper drives YCSB and TPC-C through an N-store database; what the
 * memory system observes is the per-transaction load/store footprint
 * over fixed-size records. KvStore provides exactly that: a table of
 * slotted records in simulated NVM with transactional get/put, shared
 * by the YCSB driver, the TPC-C tables, and the examples.
 */

#ifndef HOOPNVM_WORKLOADS_KV_STORE_HH
#define HOOPNVM_WORKLOADS_KV_STORE_HH

#include <cstdint>
#include <vector>

#include "txn/tx_context.hh"

namespace hoopnvm
{

/** Fixed-slot record table in simulated NVM. */
class KvStore
{
  public:
    /**
     * @param ctx          Accessor of the owning core.
     * @param records      Number of record slots.
     * @param record_bytes Payload bytes per record (word multiple).
     */
    KvStore(TxContext *ctx, std::uint64_t records,
            std::size_t record_bytes);

    /** Allocate the table (call once, outside transactions). */
    void create();

    /** Initialize record @p key untimed (pre-population). */
    void seed(std::uint64_t key, const void *payload);

    /** Timed read of record @p key. */
    void get(std::uint64_t key, void *payload);

    /** Timed write of record @p key. */
    void put(std::uint64_t key, const void *payload);

    /**
     * Field-granular update: rewrite the interleaved region selected
     * by @p version with the (key, version) pattern — eight scattered
     * word stores (the YCSB "update one field" behaviour).
     */
    void putRegion(std::uint64_t key, std::uint64_t version);

    /** Field-granular read of region @p r (eight scattered loads). */
    void getRegion(std::uint64_t key, std::size_t r);

    /** Untimed read for verification. */
    void debugGet(std::uint64_t key, void *payload) const;

    /** Untimed word read for verification. */
    std::uint64_t debugWord(std::uint64_t key, std::size_t w) const;

    std::uint64_t records() const { return records_; }
    std::size_t recordBytes() const { return recordBytes_; }

  private:
    Addr slotAddr(std::uint64_t key) const;

    TxContext *ctx;
    std::uint64_t records_;
    std::size_t recordBytes_;
    Addr base = kInvalidAddr;
};

} // namespace hoopnvm

#endif // HOOPNVM_WORKLOADS_KV_STORE_HH
