/**
 * @file
 * Persistent FIFO queue workload (Table III: 4 stores/tx, 100% writes).
 *
 * A ring buffer in simulated NVM: head and tail counters plus a slot
 * array. Each transaction performs two enqueues and up to two dequeues,
 * exercising both item writes and the pointer-update pattern whose
 * persist ordering makes queues a classic crash-consistency test.
 */

#ifndef HOOPNVM_WORKLOADS_QUEUE_WL_HH
#define HOOPNVM_WORKLOADS_QUEUE_WL_HH

#include <deque>

#include "workloads/workload.hh"

namespace hoopnvm
{

/** Transactional ring-buffer queue. */
class QueueWorkload : public Workload
{
  public:
    QueueWorkload(TxContext ctx, std::size_t value_bytes,
                  std::uint64_t capacity);

    const char *name() const override { return "queue"; }
    void setup() override;
    void runTransaction(std::uint64_t i) override;
    bool verify() const override;
    bool verifyStructure(std::string *why = nullptr) const override;

  private:
    Addr slotAddr(std::uint64_t seq) const;

    std::size_t valueBytes;
    std::uint64_t capacity;
    Addr headAddr = kInvalidAddr;
    Addr tailAddr = kInvalidAddr;
    Addr slotsBase = kInvalidAddr;

    /** Committed queue contents: sequence numbers of live items. */
    std::deque<std::uint64_t> shadow;
    std::uint64_t committedHead = 0;
    std::uint64_t committedTail = 0;
};

} // namespace hoopnvm

#endif // HOOPNVM_WORKLOADS_QUEUE_WL_HH
