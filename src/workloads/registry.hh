/**
 * @file
 * Workload registry and the simulation run loop.
 *
 * The registry exposes the paper's Table III suite by name; the run
 * loop interleaves transactions across cores (always advancing the
 * core with the smallest clock, so execution approximates concurrent
 * threads), fires controller maintenance between transactions, and
 * collects the measurement snapshot.
 */

#ifndef HOOPNVM_WORKLOADS_REGISTRY_HH
#define HOOPNVM_WORKLOADS_REGISTRY_HH

#include <string>
#include <vector>

#include "sim/system.hh"
#include "workloads/workload.hh"

namespace hoopnvm
{

/** Named workload factory (one Table III row). */
struct WorkloadSpec
{
    std::string id;
    WorkloadFactory factory;
};

/** Sizing knobs for registry-built workloads. */
struct WorkloadParams
{
    /** Item / value payload size (the paper's 64 B and 1 KB sets). */
    std::size_t valueBytes = 64;

    /** Structure size scale (items, key space, records). */
    std::uint64_t scale = 4096;

    /** YCSB update fraction (paper: 80%). */
    double ycsbUpdateRatio = 0.8;

    /** YCSB Zipfian skew. */
    double ycsbTheta = 0.99;

    // ---- Interference suite (workload "interference") ----

    /** Fraction of cores given reader roles (point_read/seq_scan). */
    double interferenceReadMix = 0.5;

    /** Target duty cycle in (0, 1]: 1 = run flat out, no pacing. */
    double interferenceSaturation = 1.0;

    /** log_append: records appended per transaction. */
    unsigned roleLogAppendsPerTx = 4;

    /** point_read: random single-word loads per transaction. */
    unsigned rolePointReadsPerTx = 8;

    /** seq_scan: whole items streamed per transaction. */
    unsigned roleScanItemsPerTx = 16;

    /** gc_pressure: whole-item overwrites per transaction. */
    unsigned roleGcOverwritesPerTx = 2;
};

/** Build the factory for workload @p name
 *  ("vector", "hashmap", "queue", "rbtree", "btree", "ycsb", "tpcc",
 *  "interference"). */
WorkloadFactory makeWorkload(const std::string &name,
                             const WorkloadParams &params);

/** The five synthetic Table III workloads. */
std::vector<WorkloadSpec> syntheticSuite(const WorkloadParams &params);

/** The full Table III suite (synthetic + YCSB + TPC-C). */
std::vector<WorkloadSpec> fullSuite(const WorkloadParams &params);

/** Result of one measured run. */
struct RunOutcome
{
    RunMetrics metrics;
    bool verified = false;
};

/**
 * Run @p tx_per_core transactions of @p factory on every core of
 * @p sys, then finalize, verify and measure.
 */
RunOutcome runWorkload(System &sys, const WorkloadFactory &factory,
                       std::uint64_t tx_per_core);

} // namespace hoopnvm

#endif // HOOPNVM_WORKLOADS_REGISTRY_HH
