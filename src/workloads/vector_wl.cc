#include "workloads/vector_wl.hh"

#include "common/logging.hh"
#include "workloads/value_pattern.hh"

namespace hoopnvm
{

VectorWorkload::VectorWorkload(TxContext ctx_, std::size_t value_bytes,
                               std::uint64_t initial_items)
    : Workload(std::move(ctx_)), valueBytes(value_bytes),
      initialItems(initial_items)
{
    HOOP_ASSERT(valueBytes % kWordSize == 0,
                "item size must be a word multiple");
}

Addr
VectorWorkload::itemAddr(std::uint64_t idx) const
{
    return items + idx * valueBytes;
}

void
VectorWorkload::setup()
{
    capacity = initialItems * 2 + 16;
    base = ctx.alloc(kWordSize, kCacheLineSize);
    items = ctx.alloc(capacity * valueBytes, kCacheLineSize);

    ctx.init(base, &initialItems, kWordSize);
    std::vector<std::uint8_t> buf(valueBytes);
    for (std::uint64_t i = 0; i < initialItems; ++i) {
        fillPattern(buf.data(), valueBytes, i, 0);
        ctx.init(itemAddr(i), buf.data(), valueBytes);
    }
    shadow.assign(initialItems, 0);
}

void
VectorWorkload::runTransaction(std::uint64_t)
{
    // One item operation per transaction: an append writes the whole
    // new item; an update rewrites one interleaved region — eight
    // scattered words (Table III: 8 stores/tx; fine-granularity
    // updates per §III-C).
    const std::uint64_t size = shadow.size();
    const std::size_t item_words = valueBytes / kWordSize;
    const std::size_t stride = regionStride(item_words);

    const bool append = size < capacity && ctx.rng().nextBool(0.2);
    if (append) {
        std::vector<std::uint8_t> buf(valueBytes);
        fillPattern(buf.data(), valueBytes, size, 0);
        ctx.txBegin();
        ctx.write(itemAddr(size), buf.data(), valueBytes);
        ctx.store(base, size + 1);
        commitTx([this] { shadow.push_back(0); });
        return;
    }

    const std::uint64_t idx = ctx.rng().nextBounded(size);
    const std::uint64_t ver = shadow[idx] + 1;
    const std::size_t region = ver % stride;
    ctx.txBegin();
    for (std::size_t j = region; j < item_words; j += stride) {
        ctx.store(itemAddr(idx) + j * kWordSize,
                  patternWord(idx, ver, j * kWordSize));
    }
    commitTx([this, idx, ver] { shadow[idx] = ver; });
}

bool
VectorWorkload::verify() const
{
    if (ctx.debugLoad(base) != shadow.size())
        return false;
    const std::size_t item_words = valueBytes / kWordSize;
    for (std::uint64_t i = 0; i < shadow.size(); ++i) {
        for (std::size_t w = 0; w < item_words; ++w) {
            if (ctx.debugLoad(itemAddr(i) + w * kWordSize) !=
                expectedWord(i, shadow[i], w, item_words)) {
                return false;
            }
        }
    }
    return true;
}

} // namespace hoopnvm
