/**
 * @file
 * hoop_lint: dependency-free static analysis for the repo's
 * determinism and durability invariants.
 *
 * The whole verification story — shrinking JSON reproducers,
 * bit-identical -j1 vs -jN cells, replayable crash schedules — rests
 * on seeded determinism. Nothing enforced that mechanically until this
 * pass: a token/line-level scanner (no libclang, so it runs in any
 * container and in CI) over src/ bench/ tools/ tests/ with a small
 * pluggable rule engine. Each rule encodes one invariant the repo has
 * already paid for violating once (see DESIGN.md §8 for the catalog
 * and per-rule rationale):
 *
 *   nondet-api       banned wall-clock / libc-random / environment
 *                    APIs in simulation code
 *   unordered-iter   iteration over std::unordered_map/set (address
 *                    or hash-order nondeterminism leaking into output
 *                    or ordering-sensitive state)
 *   ptr-key          pointer-keyed containers / pointer hashing
 *   stats-lookup     string-keyed stats_.counter("x") lookups outside
 *                    constructors (the PR 2 hot-path invariant)
 *   raw-json         JSON string emission bypassing jsonEscape (the
 *                    PR 5 RFC 8259 bug class)
 *   fatal-in-txpath  HOOP_FATAL reachable from runtime admission/tx
 *                    paths that must throw structured TxRejected
 *   float-eq         exact ==/!= against floating-point literals in
 *                    metrics code
 *
 * False positives are suppressed in-source with an annotation that
 * must carry a reason:
 *
 *     // lint: <rule>-ok (why this site is exempt)
 *
 * on the flagged line or on a comment line directly above it. A
 * malformed annotation (unknown rule, missing reason) is itself an
 * error. A checked-in baseline file can additionally suppress whole
 * (file, rule) pairs during a migration; entries that no longer match
 * anything are reported stale so the baseline cannot rot. The policy
 * target is an empty baseline: every exemption lives next to the code
 * it excuses.
 *
 * The scanner works on a comment- and literal-stripped view of each
 * file (offsets preserved), so rule tokens inside strings or comments
 * never fire — which also means the embedded self-test fixtures in
 * fixtures.hh can live inside this library as string constants.
 */

#ifndef HOOPNVM_LINT_LINT_HH
#define HOOPNVM_LINT_LINT_HH

#include <cstddef>
#include <string>
#include <vector>

namespace hoopnvm
{
namespace lint
{

/** One input file: repo-relative path (forward slashes) + content. */
struct SourceFile
{
    std::string path;
    std::string content;
};

/** One rule hit (possibly suppressed by annotation or baseline). */
struct Diagnostic
{
    std::string file;
    unsigned line = 0; ///< 1-based
    std::string rule;
    std::string message;
    bool suppressed = false;
    std::string suppressedBy; ///< annotation reason or "baseline"
};

/** Static description of one rule for --list-rules and the docs. */
struct RuleInfo
{
    const char *name;
    const char *summary;
};

/** The rule catalog, in report order. */
const std::vector<RuleInfo> &ruleCatalog();

/** True if @p name names a known rule. */
bool ruleKnown(const std::string &name);

struct LintOptions
{
    /** Baseline entries, each "path:rule" (see parseBaselineText). */
    std::vector<std::string> baseline;
};

struct LintReport
{
    /** Every hit, suppressed ones included, sorted (file, line, rule)
     *  so output is deterministic across platforms and job counts. */
    std::vector<Diagnostic> diags;

    /** Malformed annotations: "path:line: message". Count as
     *  violations — a broken suppression must not silently pass. */
    std::vector<std::string> annotationErrors;

    /** Baseline entries that matched no hit (stale; count as
     *  violations so the baseline cannot accumulate dead weight). */
    std::vector<std::string> staleBaseline;

    /** Unsuppressed diagnostics (the exit-code driver). */
    std::size_t unsuppressed = 0;

    /** True when unsuppressed == 0 and no annotation/baseline debt. */
    bool
    clean() const
    {
        return unsuppressed == 0 && annotationErrors.empty() &&
               staleBaseline.empty();
    }
};

/** Run every rule over @p files. */
LintReport lintFiles(const std::vector<SourceFile> &files,
                     const LintOptions &opts = {});

/**
 * Parse baseline file text: one "path:rule" entry per line, '#'
 * comments and blank lines ignored.
 */
std::vector<std::string> parseBaselineText(const std::string &text);

// ---- Embedded self-test fixtures (fixtures.cc) ----

/** A seeded-bad snippet that must make exactly its rule fire. */
struct Fixture
{
    const char *rule;
    const char *path; ///< synthetic path placing it in the rule's scope
    const char *code;
};

/** One bad fixture per rule, proving each rule is live. */
const std::vector<Fixture> &badFixtures();

/** A snippet every rule must stay quiet on. */
const SourceFile &cleanFixture();

} // namespace lint
} // namespace hoopnvm

#endif // HOOPNVM_LINT_LINT_HH
