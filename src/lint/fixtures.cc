/**
 * @file
 * Embedded self-test fixtures for hoop_lint.
 *
 * Each rule ships with a seeded-bad snippet that must make exactly
 * that rule fire, mirroring ordercheck's seeded-bug knobs: a rule
 * that cannot be proven live by its fixture is a dead rule, and
 * `hoop_lint --self-test` (plus tests/lint_test.cc) fails on it. The
 * snippets live inside string literals, and the scanner strips
 * literal contents before matching, so this file itself lints clean.
 */

#include "lint/lint.hh"

namespace hoopnvm
{
namespace lint
{

namespace
{

const char *kBadNondet = R"lint(
#include <random>
unsigned pick()
{
    std::random_device rd;
    srand(42);
    return rand() % 7;
}
double wall()
{
    return std::chrono::steady_clock::now().time_since_epoch().count();
}
const char *env() { return getenv("HOOP_MODE"); }
)lint";

const char *kBadUnordered = R"lint(
#include <unordered_map>
std::unordered_map<std::uint64_t, std::uint64_t> shadow;
void dump()
{
    for (const auto &kv : shadow)
        printf("%llu\n", kv.second);
}
)lint";

const char *kBadPtrKey = R"lint(
#include <map>
struct Node;
std::map<Node *, int> ranks;
std::unordered_set<const Node *> seen;
)lint";

const char *kBadStatsLookup = R"lint(
struct Gc
{
    explicit Gc(StatSet &stats) : stats_(stats) {}
    void run()
    {
        stats_.counter("gc_runs") += 1;
        stats_.histogram("gc_pause_ticks").record(7);
    }
    StatSet &stats_;
};
)lint";

const char *kBadRawJson = R"lint(
#include <string>
std::string toJson(const std::string &workload)
{
    std::string out = "{";
    out += std::string("\"workload\": ") + "\"" + workload + "\"";
    std::fprintf(f, "\"label\": \"%s\"", label.c_str());
    return out + "}";
}
)lint";

const char *kBadFatal = R"lint(
void admit(unsigned free_blocks)
{
    if (free_blocks == 0)
        HOOP_FATAL("oop region exhausted");
}
)lint";

const char *kBadFloatEq = R"lint(
bool saturated(double ratio, double miss)
{
    if (ratio == 1.0)
        return true;
    return miss != 0.25;
}
)lint";

// Quiet under every rule: seeded rng, sorted iteration, id keys,
// constructor-resolved counters, escaped JSON, structured rejection,
// integer comparisons.
const char *kClean = R"lint(
#include <map>
#include <vector>
struct Ctl
{
    explicit Ctl(StatSet &stats)
        : stats_(stats), txC_(stats.counter("tx")),
          pauseH_(stats.histogram("pause_ticks"))
    {
    }
    void run(Rng &rng)
    {
        txC_ += rng.nextU64() % 3;
        pauseH_.record(simTicks());
        if (exhausted())
            throw TxRejected{RejectCause::OopExhausted, 0};
    }
    std::string json(const std::string &wl) const
    {
        return std::string("{\"workload\": ") + jsonQuote(wl) + "}";
    }
    bool idle(std::uint64_t n) const { return n == 0; }
    StatSet &stats_;
    Counter &txC_;
    Histogram &pauseH_;
    std::map<std::uint64_t, int> byId_;
};
void walk(const Ctl &c)
{
    std::vector<std::uint64_t> keys = sortedKeys(c.byId_);
    for (std::uint64_t k : keys)
        use(k);
}
)lint";

} // namespace

const std::vector<Fixture> &
badFixtures()
{
    static const std::vector<Fixture> fixtures = {
        {"nondet-api", "src/fixture/bad_nondet.cc", kBadNondet},
        {"unordered-iter", "src/fixture/bad_unordered.cc",
         kBadUnordered},
        {"ptr-key", "src/fixture/bad_ptr_key.cc", kBadPtrKey},
        {"stats-lookup", "src/fixture/bad_stats_lookup.cc",
         kBadStatsLookup},
        {"raw-json", "src/fixture/bad_raw_json.cc", kBadRawJson},
        {"fatal-in-txpath", "src/fixture/bad_fatal.cc", kBadFatal},
        {"float-eq", "src/fixture/bad_float_eq.cc", kBadFloatEq},
    };
    return fixtures;
}

const SourceFile &
cleanFixture()
{
    static const SourceFile clean{"src/fixture/clean.cc", kClean};
    return clean;
}

} // namespace lint
} // namespace hoopnvm
