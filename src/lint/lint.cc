#include "lint/lint.hh"

#include <algorithm>
#include <cctype>
#include <map>
#include <set>
#include <utility>

namespace hoopnvm
{
namespace lint
{

namespace
{

// Filler written over string/char literal contents in the code view so
// rule tokens inside literals never match. Offsets are preserved: the
// code view has exactly the same length as the raw content.
constexpr char kFill = '\x01';

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

std::string
trim(const std::string &s)
{
    std::size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

bool
startsWith(const std::string &s, const char *prefix)
{
    return s.rfind(prefix, 0) == 0;
}

/** A string literal in the code view: offset of the opening quote plus
 *  the raw source characters between the quotes (escapes unexpanded,
 *  one filler char per source char, so close = open + text.size() + 1). */
struct Literal
{
    std::size_t open = 0;
    std::string text;
};

/** One token of the stripped code view. */
struct Token
{
    enum Kind
    {
        Ident,
        Number,
        Punct,
        Str, ///< a literal; lit indexes FileView::literals
    };
    Kind kind;
    std::size_t off = 0;
    std::string text;       ///< ident/number text, or 1-char punct
    std::size_t lit = 0;    ///< Str only
};

struct Annotation
{
    std::string rule;
    std::string reason;
};

struct FileView
{
    std::string path;
    std::string code;               ///< stripped, offset-preserving
    std::vector<std::size_t> lineStarts;
    std::vector<Literal> literals;
    std::vector<Token> tokens;
    std::vector<std::string> rawLines;
    std::vector<std::string> commentLines; ///< comment text per line
    std::vector<bool> ctorLine;     ///< inside a constructor region
    /** line -> annotations targeting it. */
    std::map<unsigned, std::vector<Annotation>> annotations;
    std::vector<std::string> annotationErrors;

    unsigned
    lineOf(std::size_t off) const
    {
        const auto it = std::upper_bound(lineStarts.begin(),
                                         lineStarts.end(), off);
        return static_cast<unsigned>(it - lineStarts.begin());
    }
};

// ---- Pass 1: strip comments, literals and preprocessor lines ----

void
stripSource(const SourceFile &src, FileView *fv)
{
    const std::string &in = src.content;
    std::string &out = fv->code;
    out = in;

    enum State
    {
        Code,
        Str,
        RawStr,
        Chr,
        LineComment,
        BlockComment,
    };
    State st = Code;
    bool atLineStart = true;
    bool pp = false; // inside a preprocessor directive (incl. continuations)

    fv->lineStarts.push_back(0);
    std::string curRaw, curComment;
    Literal lit;
    std::string rawEnd;         // `)delim"` terminator of a raw string
    std::size_t rawMatched = 0; // chars of rawEnd matched so far

    for (std::size_t i = 0; i < in.size(); ++i) {
        const char c = in[i];
        const char n = i + 1 < in.size() ? in[i + 1] : '\0';

        if (c == '\n') {
            if (st == LineComment)
                st = Code;
            if (st == RawStr)
                rawMatched = 0; // terminator cannot span lines
            if (pp && !(i > 0 && in[i - 1] == '\\'))
                pp = false;
            fv->rawLines.push_back(curRaw);
            fv->commentLines.push_back(curComment);
            curRaw.clear();
            curComment.clear();
            fv->lineStarts.push_back(i + 1);
            atLineStart = true;
            continue;
        }
        curRaw += c;

        if (atLineStart && st == Code &&
            !std::isspace(static_cast<unsigned char>(c))) {
            atLineStart = false;
            if (c == '#')
                pp = true;
        }

        switch (st) {
          case Code:
            if (c == '/' && n == '/') {
                st = LineComment;
                out[i] = ' ';
                break;
            }
            if (c == '/' && n == '*') {
                st = BlockComment;
                out[i] = ' ';
                out[i + 1] = ' ';
                curRaw += n;
                ++i;
                break;
            }
            if (pp) {
                out[i] = ' ';
                break;
            }
            if (c == '"') {
                // R"delim( ... )delim" — fill the whole literal
                // (delimiters included) so no token survives it.
                if (i > 0 && in[i - 1] == 'R' &&
                    (i == 1 || !isIdentChar(in[i - 2]))) {
                    rawEnd = ")";
                    for (std::size_t j = i + 1;
                         j < in.size() && in[j] != '(' &&
                         in[j] != '\n' && rawEnd.size() <= 17;
                         ++j)
                        rawEnd += in[j];
                    rawEnd += '"';
                    rawMatched = 0;
                    st = RawStr;
                    out[i] = kFill;
                    break;
                }
                st = Str;
                lit.open = i;
                lit.text.clear();
                break;
            }
            if (c == '\'') {
                st = Chr;
                break;
            }
            break;
          case Str:
            if (c == '\\') {
                lit.text += c;
                out[i] = kFill;
                if (n != '\0' && n != '\n') {
                    lit.text += n;
                    out[i + 1] = kFill;
                    curRaw += n;
                    ++i;
                }
                break;
            }
            if (c == '"') {
                fv->literals.push_back(lit);
                st = Code;
                break;
            }
            lit.text += c;
            out[i] = kFill;
            break;
          case RawStr:
            out[i] = kFill;
            if (c == rawEnd[rawMatched]) {
                if (++rawMatched == rawEnd.size())
                    st = Code;
            } else {
                rawMatched = c == rawEnd[0] ? 1 : 0;
            }
            break;
          case Chr:
            if (c == '\\') {
                out[i] = kFill;
                if (n != '\0' && n != '\n') {
                    out[i + 1] = kFill;
                    curRaw += n;
                    ++i;
                }
                break;
            }
            if (c == '\'') {
                st = Code;
                break;
            }
            out[i] = kFill;
            break;
          case LineComment:
            curComment += c;
            out[i] = ' ';
            break;
          case BlockComment:
            curComment += c;
            out[i] = ' ';
            if (c == '*' && n == '/') {
                out[i + 1] = ' ';
                curRaw += n;
                ++i;
                st = Code;
            }
            break;
        }
    }
    fv->rawLines.push_back(curRaw);
    fv->commentLines.push_back(curComment);
    fv->ctorLine.assign(fv->rawLines.size() + 2, false);
}

// ---- Pass 2: tokenize the code view ----

void
tokenize(FileView *fv)
{
    const std::string &s = fv->code;
    std::size_t litIdx = 0;
    for (std::size_t i = 0; i < s.size();) {
        const char c = s[i];
        if (std::isspace(static_cast<unsigned char>(c)) || c == kFill) {
            ++i;
            continue;
        }
        if (isIdentChar(c) &&
            !std::isdigit(static_cast<unsigned char>(c))) {
            Token t;
            t.kind = Token::Ident;
            t.off = i;
            while (i < s.size() && isIdentChar(s[i]))
                t.text += s[i++];
            fv->tokens.push_back(std::move(t));
            continue;
        }
        if (std::isdigit(static_cast<unsigned char>(c)) ||
            (c == '.' && i + 1 < s.size() &&
             std::isdigit(static_cast<unsigned char>(s[i + 1])))) {
            Token t;
            t.kind = Token::Number;
            t.off = i;
            while (i < s.size() &&
                   (isIdentChar(s[i]) || s[i] == '.' ||
                    ((s[i] == '+' || s[i] == '-') && i > 0 &&
                     (s[i - 1] == 'e' || s[i - 1] == 'E') &&
                     !t.text.empty() &&
                     (t.text.front() != '0' || t.text.size() < 2 ||
                      (t.text[1] != 'x' && t.text[1] != 'X')))))
                t.text += s[i++];
            fv->tokens.push_back(std::move(t));
            continue;
        }
        if (c == '"') {
            Token t;
            t.kind = Token::Str;
            t.off = i;
            t.lit = litIdx;
            // Skip the filler body to the closing quote.
            if (litIdx < fv->literals.size() &&
                fv->literals[litIdx].open == i) {
                i += fv->literals[litIdx].text.size() + 2;
                ++litIdx;
            } else {
                ++i; // stray quote (should not happen)
            }
            fv->tokens.push_back(std::move(t));
            continue;
        }
        Token t;
        t.kind = Token::Punct;
        t.off = i;
        t.text = c;
        fv->tokens.push_back(std::move(t));
        ++i;
    }
}

// ---- Pass 3: annotations ----

void
parseAnnotations(FileView *fv)
{
    const std::size_t nLines = fv->commentLines.size();
    for (std::size_t li = 0; li < nLines; ++li) {
        const std::string &cm = fv->commentLines[li];
        std::size_t pos = 0;
        while ((pos = cm.find("lint:", pos)) != std::string::npos) {
            // Word boundary: "hoop_lint:" in prose is not a marker,
            // and neither is doc text quoting the grammar itself
            // ("lint: <rule>-ok") — the marker must be followed by an
            // identifier character after optional spaces.
            if (pos > 0 && isIdentChar(cm[pos - 1])) {
                pos += 5;
                continue;
            }
            pos += 5;
            while (pos < cm.size() &&
                   std::isspace(static_cast<unsigned char>(cm[pos])))
                ++pos;
            if (pos >= cm.size() || !isIdentChar(cm[pos]))
                continue;
            std::string tok;
            while (pos < cm.size() &&
                   (isIdentChar(cm[pos]) || cm[pos] == '-'))
                tok += cm[pos++];
            const unsigned hereLine = static_cast<unsigned>(li + 1);
            auto err = [&](const std::string &msg) {
                fv->annotationErrors.push_back(
                    fv->path + ":" + std::to_string(hereLine) + ": " +
                    msg);
            };
            if (tok.size() < 4 ||
                tok.compare(tok.size() - 3, 3, "-ok") != 0) {
                err("malformed lint annotation '" + tok +
                    "' (expected '<rule>-ok (reason)')");
                continue;
            }
            const std::string rule = tok.substr(0, tok.size() - 3);
            if (!ruleKnown(rule)) {
                err("lint annotation names unknown rule '" + rule +
                    "'");
                continue;
            }
            while (pos < cm.size() &&
                   std::isspace(static_cast<unsigned char>(cm[pos])))
                ++pos;
            if (pos >= cm.size() || cm[pos] != '(') {
                err("lint annotation '" + rule +
                    "-ok' is missing its (reason)");
                continue;
            }
            const std::size_t close = cm.find(')', pos);
            const std::string reason =
                close == std::string::npos
                    ? std::string()
                    : trim(cm.substr(pos + 1, close - pos - 1));
            if (reason.empty()) {
                err("lint annotation '" + rule +
                    "-ok' has an empty reason");
                continue;
            }
            pos = close + 1;

            // Target: this line if it carries code, else the next
            // line that does (a comment-only line annotates the code
            // below it).
            unsigned target = hereLine;
            auto lineHasCode = [&](std::size_t l0) {
                const std::size_t a = fv->lineStarts[l0];
                const std::size_t b = l0 + 1 < fv->lineStarts.size()
                                          ? fv->lineStarts[l0 + 1]
                                          : fv->code.size();
                for (std::size_t k = a; k < b && k < fv->code.size();
                     ++k) {
                    const char ch = fv->code[k];
                    if (!std::isspace(static_cast<unsigned char>(ch)) &&
                        ch != kFill && ch != '\n')
                        return true;
                }
                return false;
            };
            if (!lineHasCode(li)) {
                for (std::size_t l = li + 1;
                     l < nLines && l <= li + 5; ++l) {
                    if (lineHasCode(l)) {
                        target = static_cast<unsigned>(l + 1);
                        break;
                    }
                }
            }
            fv->annotations[target].push_back(Annotation{rule, reason});
        }
    }
}

// ---- Pass 4: constructor regions (for the stats-lookup rule) ----

void
markCtorRegions(FileView *fv)
{
    struct Scope
    {
        bool ctor = false;
        bool klass = false;
        std::string className;
        std::size_t sigStart = 0;
    };
    std::vector<Scope> stack;
    const std::vector<Token> &ts = fv->tokens;
    std::size_t sigTok = 0; // first token of the pending signature

    auto enclosingClass = [&]() -> const std::string * {
        for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
            if (it->klass)
                return &it->className;
        }
        return nullptr;
    };

    for (std::size_t i = 0; i < ts.size(); ++i) {
        const Token &t = ts[i];
        if (t.kind == Token::Punct && t.text == ";") {
            sigTok = i + 1;
            continue;
        }
        if (t.kind == Token::Punct && t.text == "}") {
            if (!stack.empty()) {
                const Scope sc = stack.back();
                stack.pop_back();
                if (sc.ctor) {
                    const unsigned a = fv->lineOf(sc.sigStart);
                    const unsigned b = fv->lineOf(t.off);
                    for (unsigned l = a;
                         l <= b && l < fv->ctorLine.size(); ++l)
                        fv->ctorLine[l] = true;
                }
            }
            sigTok = i + 1;
            continue;
        }
        if (!(t.kind == Token::Punct && t.text == "{"))
            continue;

        // Classify the brace from the signature tokens [sigTok, i).
        Scope sc;
        bool isNamespace = false;
        std::string className;
        const std::string *encl = enclosingClass();
        for (std::size_t k = sigTok; k < i; ++k) {
            const Token &s = ts[k];
            if (s.kind != Token::Ident)
                continue;
            if (s.text == "namespace") {
                isNamespace = true;
                break;
            }
            if ((s.text == "class" || s.text == "struct") &&
                k + 1 < i && ts[k + 1].kind == Token::Ident) {
                className = ts[k + 1].text;
                // keep scanning: "enum class" never declares ctors but
                // classifying it as a class is harmless (no ctor name
                // will match inside).
            }
            // Out-of-class constructor: A :: A (
            if (k + 3 < i && ts[k + 1].kind == Token::Punct &&
                ts[k + 1].text == ":" && ts[k + 2].kind == Token::Punct &&
                ts[k + 2].text == ":" && ts[k + 3].kind == Token::Ident &&
                ts[k + 3].text == s.text && k + 4 < i &&
                ts[k + 4].kind == Token::Punct && ts[k + 4].text == "(") {
                sc.ctor = true;
            }
            // In-class constructor: <ClassName> (
            if (encl && s.text == *encl && k + 1 < i &&
                ts[k + 1].kind == Token::Punct &&
                ts[k + 1].text == "(" &&
                (k == sigTok || ts[k - 1].text != ":"))
                sc.ctor = true;
        }
        if (isNamespace) {
            stack.push_back(Scope{});
        } else if (sc.ctor) {
            sc.sigStart = ts[sigTok < i ? sigTok : i].off;
            stack.push_back(sc);
        } else if (!className.empty()) {
            Scope k2;
            k2.klass = true;
            k2.className = className;
            stack.push_back(k2);
        } else {
            stack.push_back(Scope{});
        }
        sigTok = i + 1;
    }
}

// ---- Rule helpers ----

char
prevNonSpace(const FileView &fv, std::size_t off)
{
    while (off > 0) {
        --off;
        const char c = fv.code[off];
        if (!std::isspace(static_cast<unsigned char>(c)) && c != kFill)
            return c;
    }
    return '\0';
}

char
nextNonSpace(const FileView &fv, std::size_t off)
{
    for (std::size_t i = off; i < fv.code.size(); ++i) {
        const char c = fv.code[i];
        if (!std::isspace(static_cast<unsigned char>(c)) && c != kFill)
            return c;
    }
    return '\0';
}

bool
inDir(const std::string &path, const char *dir)
{
    return startsWith(path, dir);
}

using Sink = std::vector<Diagnostic>;

void
emit(const FileView &fv, Sink *sink, std::size_t off,
     const char *rule, std::string msg)
{
    Diagnostic d;
    d.file = fv.path;
    d.line = fv.lineOf(off);
    d.rule = rule;
    d.message = std::move(msg);
    sink->push_back(std::move(d));
}

// ---- Rule: nondet-api ----

void
ruleNondetApi(const FileView &fv, Sink *sink)
{
    // Identifiers that must never appear in simulation code: every
    // random draw goes through the seeded common/rng.hh, every
    // timestamp is simulated ticks, and behavior must not depend on
    // the process environment. Call-shaped names additionally require
    // a '(' so struct fields that merely share a name stay quiet.
    static const std::set<std::string> callBanned = {
        "rand",       "srand",     "drand48",       "lrand48",
        "getenv",     "gettimeofday", "clock_gettime", "localtime",
        "gmtime",     "hardware_concurrency",
    };
    static const std::set<std::string> typeBanned = {
        "random_device", "mt19937", "mt19937_64", "minstd_rand",
        "default_random_engine", "knuth_b", "ranlux24", "ranlux48",
    };
    for (const Token &t : fv.tokens) {
        if (t.kind != Token::Ident)
            continue;
        const bool call = callBanned.count(t.text) > 0;
        const bool type = typeBanned.count(t.text) > 0;
        if (call || type) {
            if (call) {
                const char prev = prevNonSpace(fv, t.off);
                if (nextNonSpace(fv, t.off + t.text.size()) != '(')
                    continue;
                if (prev == '.' || prev == '>')
                    continue; // member call on some other object
            }
            emit(fv, sink, t.off, "nondet-api",
                 "banned nondeterminism API '" + t.text +
                     "' (simulation code must be seeded and "
                     "environment-independent; use common/rng.hh / "
                     "simulated ticks)");
            continue;
        }
        // Wall-clock reads: any ::now() call (steady_clock,
        // system_clock, high_resolution_clock, file_clock...).
        if (t.text == "now" && t.off >= 2 &&
            fv.code[t.off - 1] == ':' && fv.code[t.off - 2] == ':' &&
            nextNonSpace(fv, t.off + 3) == '(') {
            emit(fv, sink, t.off, "nondet-api",
                 "wall-clock read '::now()' (simulated time only; "
                 "host profiling must be annotated)");
        }
    }
}

// ---- Rule: unordered-iter ----

/** Names declared with an unordered container type anywhere in this
 *  file (members, locals, parameters). Shared between the rule itself
 *  and lintFiles's header pairing: a member declared unordered in
 *  foo.hh must still flag a range-for in foo.cc. */
std::set<std::string>
collectUnorderedNames(const FileView &fv)
{
    const std::vector<Token> &ts = fv.tokens;
    std::set<std::string> names;
    for (std::size_t i = 0; i < ts.size(); ++i) {
        if (ts[i].kind != Token::Ident ||
            (ts[i].text != "unordered_map" &&
             ts[i].text != "unordered_set" &&
             ts[i].text != "unordered_multimap" &&
             ts[i].text != "unordered_multiset"))
            continue;
        std::size_t k = i + 1;
        if (k >= ts.size() || ts[k].text != "<")
            continue;
        int depth = 0;
        for (; k < ts.size(); ++k) {
            if (ts[k].text == "<")
                ++depth;
            else if (ts[k].text == ">" && --depth == 0)
                break;
        }
        ++k;
        while (k < ts.size() &&
               (ts[k].text == ">" || ts[k].text == "*" ||
                ts[k].text == "&" || ts[k].text == "const"))
            ++k;
        if (k < ts.size() && ts[k].kind == Token::Ident) {
            const std::string next =
                k + 1 < ts.size() ? ts[k + 1].text : "";
            if (next == ";" || next == "=" || next == "," ||
                next == ")" || next == "{" || next == "(" ||
                next == "[")
                names.insert(ts[k].text);
        }
    }
    return names;
}

void
ruleUnorderedIter(const FileView &fv,
                  const std::set<std::string> &pairedNames, Sink *sink)
{
    const std::vector<Token> &ts = fv.tokens;
    std::set<std::string> names = collectUnorderedNames(fv);
    names.insert(pairedNames.begin(), pairedNames.end());
    if (names.empty())
        return;

    // Flag range-for statements whose range expression mentions one
    // of those names.
    for (std::size_t i = 0; i + 1 < ts.size(); ++i) {
        if (ts[i].kind != Token::Ident || ts[i].text != "for" ||
            ts[i + 1].text != "(")
            continue;
        int depth = 0;
        std::size_t colon = 0, close = 0;
        for (std::size_t k = i + 1; k < ts.size(); ++k) {
            if (ts[k].text == "(") {
                ++depth;
            } else if (ts[k].text == ")") {
                if (--depth == 0) {
                    close = k;
                    break;
                }
            } else if (depth == 1 && colon == 0 && ts[k].text == ":" &&
                       (k + 1 >= ts.size() || ts[k + 1].text != ":") &&
                       (k == 0 || ts[k - 1].text != ":")) {
                colon = k;
            }
        }
        if (colon == 0 || close == 0)
            continue;
        // A range expression routed through sortedKeys() already has a
        // deterministic order — that is the blessed fix for this rule.
        bool sorted = false;
        for (std::size_t k = colon + 1; k < close && !sorted; ++k)
            sorted = ts[k].kind == Token::Ident &&
                     (ts[k].text == "sortedKeys" ||
                      ts[k].text == "sortedValues");
        if (sorted)
            continue;
        for (std::size_t k = colon + 1; k < close; ++k) {
            if (ts[k].kind == Token::Ident && names.count(ts[k].text)) {
                emit(fv, sink, ts[i].off, "unordered-iter",
                     "iteration over unordered container '" +
                         ts[k].text +
                         "' (hash/address iteration order is not a "
                         "deterministic contract; sort first, use "
                         "common/flat_map.hh, or annotate an "
                         "order-insensitive fold)");
                break;
            }
        }
    }
}

// ---- Rule: ptr-key ----

void
rulePtrKey(const FileView &fv, Sink *sink)
{
    static const std::set<std::string> containers = {
        "map",      "unordered_map", "multimap", "unordered_multimap",
        "set",      "unordered_set", "multiset", "unordered_multiset",
        "hash",
    };
    const std::vector<Token> &ts = fv.tokens;
    for (std::size_t i = 0; i + 1 < ts.size(); ++i) {
        if (ts[i].kind != Token::Ident || !containers.count(ts[i].text))
            continue;
        if (ts[i + 1].text != "<")
            continue;
        // First template argument: tokens at depth 1 until ',' or the
        // matching '>'.
        int depth = 0;
        std::string arg;
        std::string lastTok;
        for (std::size_t k = i + 1; k < ts.size(); ++k) {
            if (ts[k].text == "<") {
                if (++depth == 1)
                    continue;
            } else if (ts[k].text == ">") {
                if (--depth == 0)
                    break;
            } else if (ts[k].text == "," && depth == 1) {
                break;
            }
            lastTok = ts[k].text;
            arg += ts[k].text;
        }
        if (lastTok == "*") {
            emit(fv, sink, ts[i].off, "ptr-key",
                 "pointer-keyed container '" + ts[i].text + "<" + arg +
                     ", ...>' (pointer order/hash is allocation order "
                     "— nondeterministic across runs; key by a stable "
                     "id instead)");
        }
    }
}

// ---- Rule: stats-lookup ----

void
ruleStatsLookup(const FileView &fv, Sink *sink)
{
    if (!inDir(fv.path, "src/"))
        return;
    const std::vector<Token> &ts = fv.tokens;
    for (std::size_t i = 0; i + 2 < ts.size(); ++i) {
        if (ts[i].kind != Token::Ident ||
            (ts[i].text != "counter" && ts[i].text != "histogram"))
            continue;
        const char prev = prevNonSpace(fv, ts[i].off);
        if (prev != '.' && prev != '>')
            continue;
        if (ts[i + 1].text != "(" || ts[i + 2].kind != Token::Str)
            continue;
        // Exactly one (string) argument: `counter("k", ts, v)` is the
        // trace event emitter, not a StatSet lookup.
        if (i + 3 < ts.size() && ts[i + 3].text != ")")
            continue;
        const unsigned line = fv.lineOf(ts[i].off);
        if (line < fv.ctorLine.size() && fv.ctorLine[line])
            continue;
        emit(fv, sink, ts[i].off, "stats-lookup",
             "string-keyed stats lookup '." + ts[i].text +
                 "(\"...\")' outside a constructor (resolve the "
                 "Counter&/Histogram& once at construction — the PR 2 "
                 "hot-path invariant)");
    }
}

// ---- Rule: raw-json ----

void
ruleRawJson(const FileView &fv, Sink *sink)
{
    auto lineExempt = [&](unsigned line) {
        // The escaping call being right there is the fix; also exempt
        // error-message construction (fail("... \"" + key + "\"")) —
        // quoted identifiers in diagnostics are not JSON documents.
        for (unsigned l = line >= 2 ? line - 2 : 1; l <= line; ++l) {
            if (l - 1 >= fv.rawLines.size())
                break;
            const std::string &raw = fv.rawLines[l - 1];
            if (raw.find("jsonEscape") != std::string::npos ||
                raw.find("jsonQuote") != std::string::npos ||
                raw.find("appendJsonString") != std::string::npos ||
                raw.find("fputJsonString") != std::string::npos ||
                raw.find("fail(") != std::string::npos ||
                raw.find("CHECK(") != std::string::npos ||
                raw.find("HOOP_ASSERT") != std::string::npos ||
                raw.find("HOOP_FATAL") != std::string::npos ||
                raw.find("HOOP_LOG") != std::string::npos)
                return true;
        }
        return false;
    };

    for (const Literal &lit : fv.literals) {
        const unsigned line = fv.lineOf(lit.open);
        const std::string t = trim(lit.text);
        const std::size_t closeOff = lit.open + lit.text.size() + 1;
        const char before = prevNonSpace(fv, lit.open);
        const char after = nextNonSpace(fv, closeOff + 1);

        bool hit = false;
        std::string why;
        // (a) a bare escaped-quote fragment concatenated to a runtime
        // expression: "\"" + value — the PR 5 bug class (the value is
        // emitted into a JSON string with no escaping).
        if (t == "\\\"" && (before == '+' || after == '+')) {
            hit = true;
            why = "quote fragment concatenated with a runtime value";
        }
        // (b) a JSON key/value skeleton ("\"key\": ...") concatenated
        // with a runtime expression.
        else if (lit.text.find("\\\":") != std::string::npos &&
                 (before == '+' || after == '+')) {
            hit = true;
            why = "JSON skeleton concatenated with a runtime value";
        }
        // (c) printf-family %s substituted inside escaped quotes.
        // lint: raw-json-ok (the rule's own needle text, not an emission)
        else if (lit.text.find("\\\"%s") != std::string::npos ||
                 lit.text.find("%s\\\"") != std::string::npos) {
            hit = true;
            why = "%s formatted inside JSON quotes";
        }
        if (!hit || lineExempt(line))
            continue;
        emit(fv, sink, lit.open, "raw-json",
             "raw JSON string emission (" + why +
                 ") bypasses jsonEscape — control characters and "
                 "quotes break RFC 8259 (the PR 5 bug class); route "
                 "through common/json.hh");
    }
}

// ---- Rule: fatal-in-txpath ----

void
ruleFatalInTxPath(const FileView &fv, Sink *sink)
{
    if (!inDir(fv.path, "src/"))
        return;
    for (const Token &t : fv.tokens) {
        if (t.kind != Token::Ident || t.text != "HOOP_FATAL")
            continue;
        if (nextNonSpace(fv, t.off + t.text.size()) != '(')
            continue;
        emit(fv, sink, t.off, "fatal-in-txpath",
             "HOOP_FATAL in library code: a runtime-reachable "
             "admission/tx path must throw structured TxRejected "
             "(common/errors.hh) instead of killing the process; "
             "boot/config sites carry an annotation citing the "
             "logging.hh audit");
    }
}

// ---- Rule: float-eq ----

void
ruleFloatEq(const FileView &fv, Sink *sink)
{
    if (!inDir(fv.path, "src/") && !inDir(fv.path, "bench/"))
        return;
    auto isFloatLit = [](const std::string &s) {
        if (s.empty() ||
            !std::isdigit(static_cast<unsigned char>(s[0])))
            return false;
        if (s.size() > 1 && (s[1] == 'x' || s[1] == 'X'))
            return false;
        return s.find('.') != std::string::npos ||
               s.find('e') != std::string::npos ||
               s.find('E') != std::string::npos;
    };
    const std::vector<Token> &ts = fv.tokens;
    for (std::size_t i = 0; i + 1 < ts.size(); ++i) {
        if (ts[i].kind != Token::Punct ||
            (ts[i].text != "=" && ts[i].text != "!"))
            continue;
        if (ts[i + 1].text != "=" || ts[i + 1].off != ts[i].off + 1)
            continue;
        if (i + 2 < ts.size() && ts[i + 2].text == "=" &&
            ts[i + 2].off == ts[i].off + 2)
            continue; // === cannot happen; defensive
        if (ts[i].text == "=" && i > 0) {
            const std::string &p = ts[i - 1].text;
            if (p == "<" || p == ">" || p == "!" || p == "=" ||
                p == "+" || p == "-" || p == "*" || p == "/")
                continue; // <=, >=, !=, ==... compound tokens
        }
        const Token *lhs = i > 0 ? &ts[i - 1] : nullptr;
        const Token *rhs = i + 2 < ts.size() ? &ts[i + 2] : nullptr;
        const bool l = lhs && lhs->kind == Token::Number &&
                       isFloatLit(lhs->text);
        const bool r = rhs && rhs->kind == Token::Number &&
                       isFloatLit(rhs->text);
        if (!l && !r)
            continue;
        emit(fv, sink, ts[i].off, "float-eq",
             "exact floating-point comparison against literal '" +
                 (l ? lhs->text : rhs->text) +
                 "' in metrics code (rounding makes exact equality a "
                 "latent flake; compare against an integer source or "
                 "an epsilon)");
    }
}

} // namespace

const std::vector<RuleInfo> &
ruleCatalog()
{
    static const std::vector<RuleInfo> rules = {
        {"nondet-api",
         "banned wall-clock/random/environment APIs in simulation "
         "code"},
        {"unordered-iter",
         "iteration over std::unordered_map/set (nondeterministic "
         "order)"},
        {"ptr-key",
         "pointer-keyed containers / pointer hashing (allocation-order "
         "nondeterminism)"},
        {"stats-lookup",
         "string-keyed stats counter/histogram lookup outside a "
         "constructor"},
        {"raw-json", "JSON string emission bypassing jsonEscape"},
        {"fatal-in-txpath",
         "HOOP_FATAL where runtime paths must throw TxRejected"},
        {"float-eq",
         "exact ==/!= against floating-point literals in metrics code"},
    };
    return rules;
}

bool
ruleKnown(const std::string &name)
{
    for (const RuleInfo &r : ruleCatalog()) {
        if (name == r.name)
            return true;
    }
    return false;
}

std::vector<std::string>
parseBaselineText(const std::string &text)
{
    std::vector<std::string> out;
    std::size_t pos = 0;
    while (pos <= text.size()) {
        std::size_t nl = text.find('\n', pos);
        if (nl == std::string::npos)
            nl = text.size();
        std::string line = trim(text.substr(pos, nl - pos));
        pos = nl + 1;
        if (line.empty() || line[0] == '#')
            continue;
        out.push_back(std::move(line));
        if (nl == text.size())
            break;
    }
    return out;
}

LintReport
lintFiles(const std::vector<SourceFile> &files, const LintOptions &opts)
{
    LintReport rep;
    std::set<std::string> usedBaseline;

    // Phase 1: build every view, and collect unordered-container
    // names per path stem so a foo.cc range-for over a member
    // declared in foo.hh still fires.
    std::vector<FileView> views(files.size());
    std::map<std::string, std::set<std::string>> stemNames;
    auto stemOf = [](const std::string &p) {
        const std::size_t dot = p.rfind('.');
        return dot == std::string::npos ? p : p.substr(0, dot);
    };
    for (std::size_t i = 0; i < files.size(); ++i) {
        FileView &fv = views[i];
        fv.path = files[i].path;
        stripSource(files[i], &fv);
        tokenize(&fv);
        parseAnnotations(&fv);
        markCtorRegions(&fv);
        const std::set<std::string> names = collectUnorderedNames(fv);
        stemNames[stemOf(fv.path)].insert(names.begin(), names.end());
    }

    for (std::size_t fi = 0; fi < files.size(); ++fi) {
        FileView &fv = views[fi];

        Sink sink;
        ruleNondetApi(fv, &sink);
        ruleUnorderedIter(fv, stemNames[stemOf(fv.path)], &sink);
        rulePtrKey(fv, &sink);
        ruleStatsLookup(fv, &sink);
        ruleRawJson(fv, &sink);
        ruleFatalInTxPath(fv, &sink);
        ruleFloatEq(fv, &sink);

        for (Diagnostic &d : sink) {
            const auto it = fv.annotations.find(d.line);
            if (it != fv.annotations.end()) {
                for (const Annotation &a : it->second) {
                    if (a.rule == d.rule) {
                        d.suppressed = true;
                        d.suppressedBy = a.reason;
                        break;
                    }
                }
            }
            if (!d.suppressed) {
                const std::string key = d.file + ":" + d.rule;
                for (const std::string &b : opts.baseline) {
                    if (b == key) {
                        d.suppressed = true;
                        d.suppressedBy = "baseline";
                        usedBaseline.insert(b);
                        break;
                    }
                }
            }
            rep.diags.push_back(std::move(d));
        }
        for (std::string &e : fv.annotationErrors)
            rep.annotationErrors.push_back(std::move(e));
    }

    std::sort(rep.diags.begin(), rep.diags.end(),
              [](const Diagnostic &a, const Diagnostic &b) {
                  if (a.file != b.file)
                      return a.file < b.file;
                  if (a.line != b.line)
                      return a.line < b.line;
                  return a.rule < b.rule;
              });
    std::sort(rep.annotationErrors.begin(), rep.annotationErrors.end());

    for (const std::string &b : opts.baseline) {
        if (!usedBaseline.count(b))
            rep.staleBaseline.push_back(b);
    }
    std::sort(rep.staleBaseline.begin(), rep.staleBaseline.end());

    for (const Diagnostic &d : rep.diags) {
        if (!d.suppressed)
            ++rep.unsuppressed;
    }
    return rep;
}

} // namespace lint
} // namespace hoopnvm
