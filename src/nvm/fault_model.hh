/**
 * @file
 * Deterministic, seeded NVM fault injection.
 *
 * The clean-crash model (every byte that reached the device survives,
 * every byte that did not vanishes) is too kind to recovery code. Real
 * NVM fails in two additional ways this model injects:
 *
 *  1. **Torn writes.** NVM persists multi-word stores in 8-byte units
 *     with no atomicity across them. A power failure while a write is
 *     in flight persists an arbitrary subset of its words. The model
 *     tracks every timed write still in flight (completion tick after
 *     the crash tick) together with the pre-image of its target range;
 *     on crash, a seeded coin per 8-byte word decides whether that word
 *     keeps the new value or reverts to the pre-image.
 *
 *  2. **Media faults.** Worn or disturbed cells corrupt data at rest.
 *     Faults are *scheduled* over address ranges and applied on the
 *     read path: a seeded hash of each word address decides whether the
 *     word is faulty and which bit is affected, so a faulty cell reads
 *     back the same wrong value every time — like real stuck-at or
 *     retention failures, and reproducible run-to-run.
 *
 * Everything is a pure function of the seed, the write sequence and the
 * addresses involved: two simulations with the same seed and the same
 * access stream observe byte-identical faults (fault_model_test.cc).
 * Injection itself charges no simulated time or energy.
 */

#ifndef HOOPNVM_NVM_FAULT_MODEL_HH
#define HOOPNVM_NVM_FAULT_MODEL_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "common/types.hh"
#include "nvm/write_observer.hh"

namespace hoopnvm
{

/** How a scheduled media fault corrupts an affected word. */
enum class MediaFaultKind : std::uint8_t
{
    BitFlip = 0,     ///< XOR one bit on every read of the word.
    StuckAtZero = 1, ///< One bit always reads as 0.
    StuckAtOne = 2,  ///< One bit always reads as 1.
};

/** One scheduled media-fault region. */
struct MediaFaultRange
{
    Addr begin = 0; ///< Inclusive start (byte address).
    Addr end = 0;   ///< Exclusive end.
    MediaFaultKind kind = MediaFaultKind::BitFlip;

    /** Per-word probability that the word is faulty (seeded hash). */
    double wordProbability = 0.0;
};

/** Seeded torn-write and media-fault injector for one NvmDevice. */
class FaultModel
{
  public:
    explicit FaultModel(std::uint64_t seed = 0) : seed_(seed) {}

    // ---- Configuration ----

    void setSeed(std::uint64_t seed) { seed_ = seed; }
    std::uint64_t seed() const { return seed_; }

    /** Enable torn-write tracking (off by default: zero overhead). */
    void setTornWrites(bool on);
    bool tornWritesEnabled() const { return tornWrites_; }

    /** Schedule media faults over [begin, end). */
    void addMediaFault(Addr begin, Addr end, MediaFaultKind kind,
                       double word_probability);

    /** Drop all scheduled media faults (torn-write state persists). */
    void clearMediaFaults() { ranges_.clear(); }

    /** Back to a pristine, fault-free injector (counters included). */
    void reset();

    /**
     * Zero the tallies only; in-flight writes and scheduled faults are
     * untouched. Used when a measurement phase begins mid-run.
     */
    void
    resetCounters()
    {
        writesTorn_ = 0;
        wordsTorn_ = 0;
        wordsCorrupted_ = 0;
    }

    /**
     * Attach an observer of durability fences (nullptr detaches). The
     * settle notification fires even with torn writes disabled, so the
     * ordering analyzer sees every fence in clean runs too. Survives
     * reset(): attachment is wiring, not fault state.
     */
    void setObserver(NvmWriteObserver *obs) { observer_ = obs; }

    // ---- Device hooks ----

    /**
     * Record a timed write of @p len bytes at @p addr completing at
     * @p completion; @p preimage holds the @p len bytes the range
     * contained before the write. No-op unless torn writes are on.
     */
    void noteWrite(Addr addr, const std::uint8_t *preimage,
                   std::size_t len, Tick completion, Tick now);

    /**
     * Crash at @p tick: tear every tracked write whose completion is
     * after @p tick, reverting a seeded subset of its 8-byte words via
     * @p poke (the device's untimed write-back). Clears the in-flight
     * set.
     */
    template <typename PokeFn>
    void
    applyCrash(Tick tick, PokeFn &&poke)
    {
        for (const PendingWrite &w : pending_) {
            if (w.completion <= tick)
                continue;
            ++writesTorn_;
            tearOne(w, poke);
        }
        pending_.clear();
    }

    /**
     * Durability fence: declare every tracked write whose completion
     * is at or before @p tick persisted (it can no longer tear). The
     * channel completes writes in issue order, so completions in the
     * in-flight set are monotonic and the settled writes form a
     * prefix. GC uses this before recycling blocks — it waits (in
     * simulated time) for its last issued migration write to
     * complete, then settles exactly the writes that wait drained;
     * anything issued later remains tearable.
     */
    void
    settleUpTo(Tick tick)
    {
        if (observer_)
            observer_->onSettle(tick);
        while (!pending_.empty() &&
               pending_.front().completion <= tick) {
            pending_.pop_front();
        }
    }

    /**
     * Corrupt @p len bytes read from @p addr in place per the scheduled
     * media faults. Deterministic in (seed, address). Const because the
     * read path is const; only mutable counters change.
     */
    void corruptRead(Addr addr, std::uint8_t *buf,
                     std::size_t len) const;

    /** True when any scheduled fault range overlaps [addr, addr+len). */
    bool mediaFaultyRange(Addr addr, std::size_t len) const;

    // ---- Introspection (tests, recovery stats) ----

    std::uint64_t writesTorn() const { return writesTorn_; }
    std::uint64_t wordsTorn() const { return wordsTorn_; }
    std::uint64_t wordsCorrupted() const { return wordsCorrupted_; }

    /** Timed writes still in flight (tracked, not yet settled). */
    std::size_t inflight() const { return pending_.size(); }

  private:
    struct PendingWrite
    {
        Addr addr;
        Tick completion;
        std::uint64_t serial; ///< Monotonic; seeds the per-word coin.
        std::vector<std::uint8_t> preimage;
    };

    /** Seeded coin: does word @p w of write @p serial persist? */
    bool wordPersists(std::uint64_t serial, std::uint64_t w) const;

    /**
     * Revert the non-persisted 8-byte words of @p w via @p poke.
     * Partial words at unaligned edges revert atomically with the
     * word they start in.
     */
    template <typename PokeFn>
    void
    tearOne(const PendingWrite &w, PokeFn &&poke)
    {
        const Addr end = w.addr + w.preimage.size();
        Addr word = alignDown(w.addr, kWordSize);
        for (std::uint64_t i = 0; word < end; ++i, word += kWordSize) {
            if (wordPersists(w.serial, i))
                continue;
            const Addr lo = word < w.addr ? w.addr : word;
            const Addr hi = word + kWordSize < end ? word + kWordSize
                                                   : end;
            poke(lo, w.preimage.data() + (lo - w.addr), hi - lo);
            ++wordsTorn_;
        }
    }

    std::uint64_t seed_;
    bool tornWrites_ = false;
    NvmWriteObserver *observer_ = nullptr;
    std::deque<PendingWrite> pending_;
    std::uint64_t nextSerial_ = 0;
    std::vector<MediaFaultRange> ranges_;

    std::uint64_t writesTorn_ = 0;
    std::uint64_t wordsTorn_ = 0;
    mutable std::uint64_t wordsCorrupted_ = 0;
};

} // namespace hoopnvm

#endif // HOOPNVM_NVM_FAULT_MODEL_HH
