/**
 * @file
 * Deterministic, seeded NVM fault injection.
 *
 * The clean-crash model (every byte that reached the device survives,
 * every byte that did not vanishes) is too kind to recovery code. Real
 * NVM fails in two additional ways this model injects:
 *
 *  1. **Torn writes.** NVM persists multi-word stores in 8-byte units
 *     with no atomicity across them. A power failure while a write is
 *     in flight persists an arbitrary subset of its words. The model
 *     tracks every timed write still in flight (completion tick after
 *     the crash tick) together with the pre-image of its target range;
 *     on crash, a seeded coin per 8-byte word decides whether that word
 *     keeps the new value or reverts to the pre-image.
 *
 *  2. **Media faults.** Worn or disturbed cells corrupt data at rest.
 *     Faults are *scheduled* over address ranges and applied on the
 *     read path: a seeded hash of each word address decides whether the
 *     word is faulty and which bits are affected, so a faulty cell
 *     reads back the same wrong value every time — like real stuck-at
 *     or retention failures, and reproducible run-to-run. When ranges
 *     overlap, the first scheduled range covering a faulty word wins
 *     (its kind and bit budget apply; later ranges are ignored for
 *     that word), so precedence is deterministic and order-declared.
 *
 * On top of the raw injector sits the *media-tolerance* model used by
 * the runtime fault-tolerance subsystem (all knobs default off):
 *
 *  - **ECC.** A k-bit-correcting code per 8-byte word: faulty words
 *    with at most k affected bits are delivered clean and counted as
 *    corrected (the device charges a latency surcharge per correction).
 *  - **Transient faults.** BitFlip-kind faults can be declared
 *    transient (read disturb): a seeded per-word attempt count decides
 *    after how many re-reads the word reads clean, enabling a bounded,
 *    deterministic read-retry policy. Stuck-at faults never clear.
 *  - **Severity classification.** classifySeverity()/
 *    uncorrectableInRange() expose the pure-function verdict so write
 *    paths can program-verify a target slot *before* committing data
 *    to it, and recovery can distinguish a never-written bad slot from
 *    a torn write.
 *
 * Everything is a pure function of the seed, the write sequence and the
 * addresses involved: two simulations with the same seed and the same
 * access stream observe byte-identical faults (fault_model_test.cc).
 * Injection itself charges no simulated time or energy.
 */

#ifndef HOOPNVM_NVM_FAULT_MODEL_HH
#define HOOPNVM_NVM_FAULT_MODEL_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "common/types.hh"
#include "nvm/write_observer.hh"

namespace hoopnvm
{

/** How a scheduled media fault corrupts an affected word. */
enum class MediaFaultKind : std::uint8_t
{
    BitFlip = 0,     ///< XOR the selected bits on every read.
    StuckAtZero = 1, ///< Selected bits always read as 0.
    StuckAtOne = 2,  ///< Selected bits always read as 1.
};

/** One scheduled media-fault region. */
struct MediaFaultRange
{
    Addr begin = 0; ///< Inclusive start (byte address).
    Addr end = 0;   ///< Exclusive end.
    MediaFaultKind kind = MediaFaultKind::BitFlip;

    /** Per-word probability that the word is faulty (seeded hash). */
    double wordProbability = 0.0;

    /**
     * Upper bound on affected bits per faulty word (seeded, in
     * [1, maxBitsPerWord]). 1 reproduces the classic single-bit model;
     * larger values exercise the ECC correctable/uncorrectable split.
     */
    unsigned maxBitsPerWord = 1;
};

/** Severity of the media fault affecting one 8-byte word. */
enum class FaultSeverity : std::uint8_t
{
    Clean = 0,     ///< No scheduled fault hits the word.
    Correctable,   ///< Affected bits within the ECC budget.
    Transient,     ///< BitFlip beyond ECC, but clears under retry.
    Uncorrectable, ///< Permanent (stuck-at) beyond the ECC budget.
};

/** Per-read fault report filled by the ECC/retry-aware read path. */
struct ReadFaultInfo
{
    /** Words delivered clean by in-line ECC correction. */
    std::uint32_t correctedWords = 0;

    /** Transient words that read corrupt at this attempt. */
    std::uint32_t transientWords = 0;

    /** Words delivered corrupt beyond ECC and retry. */
    std::uint32_t uncorrectableWords = 0;

    /** First uncorrectable word address (kInvalidAddr when none). */
    Addr firstUncorrectable = kInvalidAddr;

    /** Retry attempts the device spent on this read. */
    std::uint32_t retries = 0;

    bool uncorrectable() const { return uncorrectableWords > 0; }
};

/** Seeded torn-write and media-fault injector for one NvmDevice. */
class FaultModel
{
  public:
    explicit FaultModel(std::uint64_t seed = 0) : seed_(seed) {}

    // ---- Configuration ----

    void setSeed(std::uint64_t seed) { seed_ = seed; }
    std::uint64_t seed() const { return seed_; }

    /** Enable torn-write tracking (off by default: zero overhead). */
    void setTornWrites(bool on);
    bool tornWritesEnabled() const { return tornWrites_; }

    /** Schedule media faults over [begin, end). */
    void addMediaFault(Addr begin, Addr end, MediaFaultKind kind,
                       double word_probability,
                       unsigned max_bits_per_word = 1);

    /** Drop all scheduled media faults (torn-write state persists). */
    void clearMediaFaults() { ranges_.clear(); }

    /** True when any media-fault range is scheduled. */
    bool hasMediaFaults() const { return !ranges_.empty(); }

    /**
     * Back to a pristine, fault-free injector: clears the in-flight
     * write set, every scheduled media-fault range, and all tallies.
     * Wiring (observer attachment, ECC/retry policy) survives.
     */
    void reset();

    /**
     * Zero the tallies only; in-flight writes and scheduled faults are
     * untouched. Used when a measurement phase begins mid-run.
     */
    void
    resetCounters()
    {
        writesTorn_ = 0;
        wordsTorn_ = 0;
        wordsCorrupted_ = 0;
        wordsEccCorrected_ = 0;
        wordsTransientCleared_ = 0;
        wordsUncorrectable_ = 0;
    }

    /**
     * Attach an observer of durability fences (nullptr detaches). The
     * settle notification fires even with torn writes disabled, so the
     * ordering analyzer sees every fence in clean runs too. Survives
     * reset(): attachment is wiring, not fault state.
     */
    void setObserver(NvmWriteObserver *obs) { observer_ = obs; }

    // ---- Media-tolerance policy (wiring; survives reset()) ----

    /** Model a @p correct_bits-correcting per-word ECC (0 disables). */
    void setEcc(unsigned correct_bits) { eccBits_ = correct_bits; }
    unsigned eccBits() const { return eccBits_; }

    /**
     * Declare BitFlip-kind faults transient: a seeded per-word count
     * in [1, @p max_attempts] decides after how many re-reads the word
     * reads clean (0 = BitFlips are permanent, the default).
     */
    void
    setTransientFaults(unsigned max_attempts)
    {
        transientAttempts_ = max_attempts;
    }
    unsigned transientAttempts() const { return transientAttempts_; }

    // ---- Device hooks ----

    /**
     * Record a timed write of @p len bytes at @p addr completing at
     * @p completion; @p preimage holds the @p len bytes the range
     * contained before the write. No-op unless torn writes are on.
     */
    void noteWrite(Addr addr, const std::uint8_t *preimage,
                   std::size_t len, Tick completion, Tick now);

    /**
     * Crash at @p tick: tear every tracked write whose completion is
     * after @p tick, reverting a seeded subset of its 8-byte words via
     * @p poke (the device's untimed write-back). Clears the in-flight
     * set.
     */
    template <typename PokeFn>
    void
    applyCrash(Tick tick, PokeFn &&poke)
    {
        for (const PendingWrite &w : pending_) {
            if (w.completion <= tick)
                continue;
            ++writesTorn_;
            tearOne(w, poke);
        }
        pending_.clear();
    }

    /**
     * Durability fence: declare every tracked write whose completion
     * is at or before @p tick persisted (it can no longer tear). The
     * channel completes writes in issue order, so completions in the
     * in-flight set are monotonic and the settled writes form a
     * prefix. GC uses this before recycling blocks — it waits (in
     * simulated time) for its last issued migration write to
     * complete, then settles exactly the writes that wait drained;
     * anything issued later remains tearable.
     */
    void
    settleUpTo(Tick tick)
    {
        if (observer_)
            observer_->onSettle(tick);
        while (!pending_.empty() &&
               pending_.front().completion <= tick) {
            pending_.pop_front();
        }
    }

    /**
     * Corrupt @p len bytes read from @p addr in place per the scheduled
     * media faults, as read attempt 0 with no fault report (the legacy
     * single-attempt read path). Deterministic in (seed, address).
     */
    void
    corruptRead(Addr addr, std::uint8_t *buf, std::size_t len) const
    {
        filterRead(addr, buf, len, 0, nullptr);
    }

    /**
     * ECC/retry-aware read filter: apply the scheduled media faults to
     * @p buf for read attempt @p attempt, honouring the ECC budget
     * (correctable words are delivered clean) and transient clearing
     * (a transient word reads clean from its seeded attempt onwards).
     * Fills @p rf (when non-null) with the per-severity word counts.
     * Const because the read path is const; only mutable tallies
     * change.
     */
    void filterRead(Addr addr, std::uint8_t *buf, std::size_t len,
                    unsigned attempt, ReadFaultInfo *rf) const;

    /**
     * The attempt number from which every transient word reads clean;
     * peek()-style functional reads use it to model a controller that
     * always retries to completion.
     */
    unsigned
    settledAttempt() const
    {
        return transientAttempts_;
    }

    /** Severity of the fault (if any) affecting @p word's 8 bytes. */
    FaultSeverity classifySeverity(Addr word) const;

    /**
     * True when any word in [addr, addr+len) is permanently
     * uncorrectable (stuck-at beyond the ECC budget). This is the
     * program-verify predicate: a write path must not commit data to
     * such a range, and recovery may treat it as never-written.
     */
    bool uncorrectableInRange(Addr addr, std::size_t len) const;

    /** True when any scheduled fault range overlaps [addr, addr+len). */
    bool mediaFaultyRange(Addr addr, std::size_t len) const;

    // ---- Introspection (tests, recovery stats) ----

    std::uint64_t writesTorn() const { return writesTorn_; }
    std::uint64_t wordsTorn() const { return wordsTorn_; }
    std::uint64_t wordsCorrupted() const { return wordsCorrupted_; }
    std::uint64_t wordsEccCorrected() const { return wordsEccCorrected_; }

    std::uint64_t
    wordsTransientCleared() const
    {
        return wordsTransientCleared_;
    }

    std::uint64_t
    wordsUncorrectable() const
    {
        return wordsUncorrectable_;
    }

    /** Timed writes still in flight (tracked, not yet settled). */
    std::size_t inflight() const { return pending_.size(); }

  private:
    struct PendingWrite
    {
        Addr addr;
        Tick completion;
        std::uint64_t serial; ///< Monotonic; seeds the per-word coin.
        std::vector<std::uint8_t> preimage;
    };

    /** Decoded fault affecting one word (first covering range wins). */
    struct WordFault
    {
        bool faulty = false;
        MediaFaultKind kind = MediaFaultKind::BitFlip;
        unsigned nbits = 0;
        const MediaFaultRange *range = nullptr;
    };

    /** Seeded per-word fault under first-covering-range precedence. */
    WordFault classifyWord(Addr word) const;

    /** Seeded attempt from which transient word @p word reads clean. */
    unsigned transientClearAttempt(Addr word) const;

    /**
     * Apply @p f's bits to @p word's bytes, clamped to the read window
     * and the fault range; returns the number of bits that landed.
     * A null @p buf is a dry run (count applicable bits only).
     */
    unsigned corruptWord(Addr word, const WordFault &f, Addr read_begin,
                         Addr read_end, std::uint8_t *buf) const;

    /** Seeded coin: does word @p w of write @p serial persist? */
    bool wordPersists(std::uint64_t serial, std::uint64_t w) const;

    /**
     * Revert the non-persisted 8-byte words of @p w via @p poke.
     * Partial words at unaligned edges revert atomically with the
     * word they start in.
     */
    template <typename PokeFn>
    void
    tearOne(const PendingWrite &w, PokeFn &&poke)
    {
        const Addr end = w.addr + w.preimage.size();
        Addr word = alignDown(w.addr, kWordSize);
        for (std::uint64_t i = 0; word < end; ++i, word += kWordSize) {
            if (wordPersists(w.serial, i))
                continue;
            const Addr lo = word < w.addr ? w.addr : word;
            const Addr hi = word + kWordSize < end ? word + kWordSize
                                                   : end;
            poke(lo, w.preimage.data() + (lo - w.addr), hi - lo);
            ++wordsTorn_;
        }
    }

    std::uint64_t seed_;
    bool tornWrites_ = false;
    NvmWriteObserver *observer_ = nullptr;
    std::deque<PendingWrite> pending_;
    std::uint64_t nextSerial_ = 0;
    std::vector<MediaFaultRange> ranges_;

    // Media-tolerance policy (wiring; survives reset()).
    unsigned eccBits_ = 0;
    unsigned transientAttempts_ = 0;

    std::uint64_t writesTorn_ = 0;
    std::uint64_t wordsTorn_ = 0;
    mutable std::uint64_t wordsCorrupted_ = 0;
    mutable std::uint64_t wordsEccCorrected_ = 0;
    mutable std::uint64_t wordsTransientCleared_ = 0;
    mutable std::uint64_t wordsUncorrectable_ = 0;
};

} // namespace hoopnvm

#endif // HOOPNVM_NVM_FAULT_MODEL_HH
