/**
 * @file
 * Observer interface over the NVM device's durability-relevant events.
 *
 * The persistency-ordering analyzer (src/analysis/) needs to see three
 * things to reason about durability happens-before: every *timed* write
 * (issue and completion ticks), every durability fence
 * (FaultModel::settleUpTo), and every crash. The interface lives in the
 * nvm layer so the device depends only on this header, never on the
 * analyzer.
 *
 * Untimed accesses (peek/poke) and pure accounting traffic
 * (writeAccounting) carry no durability obligation — they bypass the
 * fault model too — so they are deliberately not observable.
 */

#ifndef HOOPNVM_NVM_WRITE_OBSERVER_HH
#define HOOPNVM_NVM_WRITE_OBSERVER_HH

#include <cstddef>

#include "common/types.hh"

namespace hoopnvm
{

/** Sees timed writes, durability fences and crashes of one device. */
class NvmWriteObserver
{
  public:
    virtual ~NvmWriteObserver() = default;

    /**
     * A timed write of @p len bytes at @p addr was issued at @p issue
     * and completes (becomes durable) at @p completion. Completion
     * ticks arrive monotonically non-decreasing: the channel services
     * writes in issue order.
     */
    virtual void onTimedWrite(Addr addr, std::size_t len, Tick issue,
                              Tick completion) = 0;

    /**
     * Durability fence: every write with completion <= @p tick is now
     * settled and can no longer tear. Fired by FaultModel::settleUpTo
     * regardless of whether torn-write injection is enabled.
     */
    virtual void onSettle(Tick tick) = 0;

    /**
     * Power failure at @p tick: all in-flight writes resolve (tear or
     * persist); nothing issued before the crash remains in flight.
     */
    virtual void onCrash(Tick tick) = 0;
};

} // namespace hoopnvm

#endif // HOOPNVM_NVM_WRITE_OBSERVER_HH
