/**
 * @file
 * Persisted bad-block/bad-slot retirement bitmap.
 *
 * When the runtime fault-tolerance subsystem retires an OOP block or a
 * log-ring slot (its cells fail program-verify or exhaust the read-retry
 * budget), the retirement decision itself must survive crashes: recovery
 * has to skip retired units without re-reading their broken cells, and
 * must never "un-retire" a unit because the bitmap write tore.
 *
 * The map is double-buffered: two fixed slots on NVM, each holding
 *
 *     [magic | crc | seq | bitmap words ...]
 *
 * with the CRC-32C covering seq + bitmap. Updates alternate slots and
 * bump seq, so at any crash point at least one slot is intact and the
 * higher-valid-seq slot is authoritative. Retirement is monotonic
 * (bits are only ever set at runtime), so falling back to the older
 * slot after a torn update merely forgets the *latest* retirement —
 * and the caller re-fences and re-persists before acting on it (the
 * "<name>-retire-bitmap" ordering rules declare exactly that contract
 * to the persistency-ordering analyzer).
 *
 * The writer side is volatile state owned by the region that embeds it;
 * loadDurable() rebuilds it from NVM after a crash.
 */

#ifndef HOOPNVM_NVM_RETIREMENT_MAP_HH
#define HOOPNVM_NVM_RETIREMENT_MAP_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace hoopnvm
{

class NvmDevice;

/** Double-buffered, CRC-protected persisted retirement bitmap. */
class RetirementMap
{
  public:
    /** On-NVM bytes needed for a map of @p entries units. */
    static std::uint64_t areaBytes(std::uint64_t entries);

    RetirementMap() = default;

    /**
     * Bind to @p entries units persisted at [@p base, @p base +
     * areaBytes(entries)) of @p nvm. Volatile state starts all-clear;
     * call loadDurable() to adopt what NVM already holds.
     */
    void attach(NvmDevice &nvm, Addr base, std::uint64_t entries);

    /** True when attach() has been called. */
    bool attached() const { return nvm_ != nullptr; }

    std::uint64_t entries() const { return entries_; }

    /** Retired units in the volatile view. */
    std::uint64_t retiredCount() const { return retired_; }

    bool isRetired(std::uint64_t idx) const;

    /**
     * Retire unit @p idx and persist the updated bitmap into the next
     * slot with a timed write at @p now; returns the completion tick
     * of that write. The caller is responsible for fencing (settling)
     * the returned write before acting on the retirement — see the
     * ordering contract in the file header. No-op (returns @p now)
     * when the bit is already set.
     */
    Tick persistRetire(std::uint64_t idx, Tick now);

    /**
     * Rebuild the volatile view from the higher-valid-seq NVM slot
     * (functional peek; recovery-time). All-clear when neither slot
     * decodes. Returns the number of retired units adopted.
     */
    std::uint64_t loadDurable();

    /**
     * Untimed re-persist of the current volatile view into both slots
     * (pre-simulation reset paths that survive retirement).
     */
    void persistUntimed();

  private:
    static constexpr std::uint64_t kMagic = 0x52455449524d4150ULL;

    /** Byte address of buffer slot @p which (0 or 1). */
    Addr slotAddr(unsigned which) const;

    /** Serialize the volatile view (header + bitmap) into @p out. */
    void encode(std::vector<std::uint8_t> &out) const;

    NvmDevice *nvm_ = nullptr;
    Addr base_ = 0;
    std::uint64_t entries_ = 0;
    std::uint64_t seq_ = 0;
    unsigned nextSlot_ = 0;
    std::uint64_t retired_ = 0;
    std::vector<std::uint64_t> bits_;
};

} // namespace hoopnvm

#endif // HOOPNVM_NVM_RETIREMENT_MAP_HH
