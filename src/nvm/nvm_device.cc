#include "nvm/nvm_device.hh"

#include <cstring>
#include <vector>

#include "common/logging.hh"

namespace hoopnvm
{

NvmDevice::NvmDevice(std::uint64_t capacity, NvmTiming timing,
                     EnergyParams energy)
    : capacity_(capacity), timing_(timing), energy_(energy)
{
    HOOP_ASSERT(capacity_ > 0, "NVM capacity must be non-zero");
}

NvmDevice::Page &
NvmDevice::pageFor(Addr addr)
{
    HOOP_ASSERT(addr < capacity_, "NVM address 0x%llx out of range",
                static_cast<unsigned long long>(addr));
    const std::uint64_t idx = addr / kPageBytes;
    const std::size_t slot = idx & (kPageCacheSlots - 1);
    if (cachedPageIdx_[slot] == idx + 1)
        return *cachedPage_[slot];
    auto &entry = pages[idx];
    if (!entry) {
        entry = std::make_unique<Page>();
        entry->fill(0);
    }
    cachedPageIdx_[slot] = idx + 1;
    cachedPage_[slot] = entry.get();
    return *entry;
}

const NvmDevice::Page *
NvmDevice::pageIfPresent(Addr addr) const
{
    HOOP_ASSERT(addr < capacity_, "NVM address 0x%llx out of range",
                static_cast<unsigned long long>(addr));
    const std::uint64_t idx = addr / kPageBytes;
    const std::size_t slot = idx & (kPageCacheSlots - 1);
    if (cachedPageIdx_[slot] == idx + 1)
        return cachedPage_[slot];
    auto it = pages.find(idx);
    if (it == pages.end())
        return nullptr; // absent pages are not cached: they may appear
    cachedPageIdx_[slot] = idx + 1;
    cachedPage_[slot] = it->second.get();
    return it->second.get();
}

void
NvmDevice::flushPageCache() const
{
    cachedPageIdx_.fill(0);
}

Tick
NvmDevice::reserve(Tick now, std::size_t len, bool is_write)
{
    const Tick start = std::max(now, channelFree_);
    if (start > now)
        channelWaitTicks_ += start - now;
    const Tick transfer = timing_.transferTicks(len);
    // The access holds the channel/bank for the transfer plus the
    // device-side busy time; its own completion additionally pays the
    // (pipelined) access latency.
    const Tick hold = transfer +
                      (is_write ? timing_.writeBusy : timing_.readBusy);
    channelBusyTicks_ += hold;
    channelFree_ = start + hold;
    const Tick latency =
        is_write ? timing_.writeLatency : timing_.readLatency;

    energy_.charge(len, is_write);
    if (is_write) {
        bytesWritten_ += len;
        ++writeAccesses_;
    } else {
        bytesRead_ += len;
        ++readAccesses_;
    }
    return start + latency + transfer;
}

Tick
NvmDevice::read(Tick now, Addr addr, void *buf, std::size_t len,
                ReadFaultInfo *rf)
{
    if (rf)
        *rf = ReadFaultInfo{};
    if (!faults_.hasMediaFaults()) {
        peekRaw(addr, buf, len);
        return reserve(now, len, false);
    }
    auto *out = static_cast<std::uint8_t *>(buf);
    peekRaw(addr, out, len);
    Tick done = reserve(now, len, false);
    ReadFaultInfo info;
    faults_.filterRead(addr, out, len, 0, &info);
    // Bounded, seeded retry: transient (read-disturb) faults clear
    // after a per-word seeded attempt count, stuck-at faults never do,
    // so the loop is short in practice and bounded always. Each retry
    // backs off and re-occupies the channel like a fresh read. Any
    // corrupt delivery retries — transient words especially, since a
    // re-read is exactly what clears them; delivering them would leak
    // silent corruption into cache fills and later write-backs.
    unsigned attempt = 0;
    while ((info.uncorrectableWords > 0 || info.transientWords > 0) &&
           attempt < readRetryMax_) {
        ++attempt;
        ++readRetries_;
        done = reserve(done + readRetryBackoff_, len, false);
        peekRaw(addr, out, len);
        info = ReadFaultInfo{};
        faults_.filterRead(addr, out, len, attempt, &info);
    }
    info.retries = attempt;
    if (info.uncorrectable())
        ++uncorrectableReads_;
    // In-line correction is not free: latency surcharge per corrected
    // word, plus the word's re-read energy for the correction pipeline.
    // The correction pipeline sits on the device side of the channel,
    // so the surcharge also extends the channel occupancy — other
    // requesters queue behind it, not just this read's completion.
    if (info.correctedWords > 0) {
        const Tick surcharge = eccCorrectCost_ * info.correctedWords;
        done += surcharge;
        channelFree_ += surcharge;
        channelBusyTicks_ += surcharge;
        energy_.charge(info.correctedWords * kWordSize, false);
    }
    if (rf)
        *rf = info;
    return done;
}

Tick
NvmDevice::write(Tick now, Addr addr, const void *buf, std::size_t len)
{
    return write(now, addr, buf, len, len);
}

Tick
NvmDevice::write(Tick now, Addr addr, const void *buf, std::size_t len,
                 std::size_t accounted)
{
    std::vector<std::uint8_t> preimage;
    if (faults_.tornWritesEnabled()) {
        preimage.resize(len);
        peekRaw(addr, preimage.data(), len);
    }
    poke(addr, buf, len);
    const Tick done = reserve(now, accounted, true);
    if (faults_.tornWritesEnabled())
        faults_.noteWrite(addr, preimage.data(), len, done, now);
    if (observer_)
        observer_->onTimedWrite(addr, len, now, done);
    return done;
}

Tick
NvmDevice::writeAccounting(Tick now, std::size_t len)
{
    return reserve(now, len, true);
}

Tick
NvmDevice::readAccounting(Tick now, std::size_t len)
{
    return reserve(now, len, false);
}

void
NvmDevice::peek(Addr addr, void *buf, std::size_t len) const
{
    peekRaw(addr, buf, len);
    // Functional reads model a controller that retries to completion:
    // transient faults are past their clearing attempt, ECC-correctable
    // words are delivered clean. Only permanently uncorrectable damage
    // survives into the returned bytes (upstream CRCs detect it).
    // With no ECC/retry configured this is exactly corruptRead().
    faults_.filterRead(addr, static_cast<std::uint8_t *>(buf), len,
                       faults_.settledAttempt(), nullptr);
}

void
NvmDevice::peekRaw(Addr addr, void *buf, std::size_t len) const
{
    auto *out = static_cast<std::uint8_t *>(buf);
    while (len > 0) {
        const std::uint64_t off = addr % kPageBytes;
        const std::size_t chunk =
            std::min<std::size_t>(len, kPageBytes - off);
        if (const Page *p = pageIfPresent(addr))
            std::memcpy(out, p->data() + off, chunk);
        else
            std::memset(out, 0, chunk);
        addr += chunk;
        out += chunk;
        len -= chunk;
    }
}

void
NvmDevice::poke(Addr addr, const void *buf, std::size_t len)
{
    const auto *in = static_cast<const std::uint8_t *>(buf);
    while (len > 0) {
        const std::uint64_t off = addr % kPageBytes;
        const std::size_t chunk =
            std::min<std::size_t>(len, kPageBytes - off);
        std::memcpy(pageFor(addr).data() + off, in, chunk);
        addr += chunk;
        in += chunk;
        len -= chunk;
    }
}

std::uint64_t
NvmDevice::peekWord(Addr addr) const
{
    std::uint64_t v = 0;
    peek(addr, &v, sizeof(v));
    return v;
}

void
NvmDevice::pokeWord(Addr addr, std::uint64_t value)
{
    poke(addr, &value, sizeof(value));
}

Tick
NvmDevice::drainFence(Tick now)
{
    // Every write already issued completes no later than its channel
    // slot plus the array write latency (latency is pipelined, so the
    // last slot's completion bounds them all). Holding the channel to
    // the bound is the point of the fix: a read issued after the fence
    // at an *earlier* core clock must queue behind the drain rather
    // than be serviced inside the window it fences.
    const Tick bound = std::max(now, channelFree_ + timing_.writeLatency);
    if (bound > channelFree_)
        channelBusyTicks_ += bound - channelFree_;
    channelFree_ = bound;
    ++drainFences_;
    return bound;
}

void
NvmDevice::resetCounters()
{
    channelBusyTicks_ = 0;
    channelWaitTicks_ = 0;
    drainFences_ = 0;
    bytesRead_ = 0;
    bytesWritten_ = 0;
    readAccesses_ = 0;
    writeAccesses_ = 0;
    readRetries_ = 0;
    uncorrectableReads_ = 0;
    energy_.reset();
}

void
NvmDevice::clear()
{
    pages.clear();
    flushPageCache();
    channelFree_ = 0;
    faults_.reset();
    resetCounters();
}

void
NvmDevice::applyCrashFaults(Tick tick)
{
    faults_.applyCrash(tick, [this](Addr a, const std::uint8_t *buf,
                                    std::size_t len) {
        poke(a, buf, len);
    });
    if (observer_)
        observer_->onCrash(tick);
}

void
NvmDevice::setWriteObserver(NvmWriteObserver *obs)
{
    observer_ = obs;
    faults_.setObserver(obs);
}

} // namespace hoopnvm
