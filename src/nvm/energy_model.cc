#include "nvm/energy_model.hh"

namespace hoopnvm
{

EnergyModel::EnergyModel(EnergyParams params_)
    : params(params_)
{
}

void
EnergyModel::charge(std::size_t bytes, bool is_write)
{
    const double bits = static_cast<double>(bytes) * 8.0;
    if (is_write) {
        writePj += bits *
            (params.rowBufferWritePjPerBit + params.arrayWritePjPerBit);
    } else {
        readPj += bits *
            (params.rowBufferReadPjPerBit + params.arrayReadPjPerBit);
    }
}

void
EnergyModel::reset()
{
    readPj = 0.0;
    writePj = 0.0;
}

} // namespace hoopnvm
