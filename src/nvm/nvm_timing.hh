/**
 * @file
 * NVM timing parameters (paper Table II defaults).
 *
 * The paper models a PCM-like device with 50 ns read and 150 ns write
 * latency; the recovery experiment (Fig. 11) additionally varies channel
 * bandwidth between 10 and 25 GB/s, and the sensitivity study (Fig. 12)
 * sweeps read latency 50-250 ns and write latency 150-350 ns.
 */

#ifndef HOOPNVM_NVM_NVM_TIMING_HH
#define HOOPNVM_NVM_NVM_TIMING_HH

#include "common/types.hh"

namespace hoopnvm
{

/** Timing parameters of the simulated NVM device. */
struct NvmTiming
{
    /** Device read access latency. */
    Tick readLatency = nsToTicks(50);

    /** Device write access latency. */
    Tick writeLatency = nsToTicks(150);

    /** Channel bandwidth in bytes per second. */
    double bandwidthBytesPerSec = 25.0 * 1e9;

    /**
     * Bank occupancy beyond the data transfer. PCM-class cells hold
     * the bank busy for much of the array write, so effective write
     * bandwidth is far below the channel rate — the pressure that
     * throttles double-writing schemes in the paper's Fig. 7/8.
     */
    Tick readBusy = nsToTicks(5);
    Tick writeBusy = nsToTicks(20);

    /** Ticks the channel is occupied transferring @p bytes. */
    Tick
    transferTicks(std::size_t bytes) const
    {
        const double ns =
            static_cast<double>(bytes) * 1e9 / bandwidthBytesPerSec;
        return nsToTicks(ns);
    }
};

} // namespace hoopnvm

#endif // HOOPNVM_NVM_NVM_TIMING_HH
