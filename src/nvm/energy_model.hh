/**
 * @file
 * NVM access energy model (paper Table II).
 *
 * Energy is charged per bit transferred: a row-buffer component plus an
 * array component, with separate read/write costs. Writes are an order
 * of magnitude more expensive than reads (16.82 vs 2.47 pJ/bit at the
 * array), which is why write-traffic reduction dominates the energy
 * results in the paper's Figure 9.
 */

#ifndef HOOPNVM_NVM_ENERGY_MODEL_HH
#define HOOPNVM_NVM_ENERGY_MODEL_HH

#include <cstddef>

namespace hoopnvm
{

/** Per-bit energy parameters in picojoules. */
struct EnergyParams
{
    double rowBufferReadPjPerBit = 0.93;
    double rowBufferWritePjPerBit = 1.02;
    double arrayReadPjPerBit = 2.47;
    double arrayWritePjPerBit = 16.82;
};

/** Accumulates access energy from byte counts. */
class EnergyModel
{
  public:
    explicit EnergyModel(EnergyParams params = EnergyParams{});

    /** Charge one access of @p bytes; @p is_write selects the cost. */
    void charge(std::size_t bytes, bool is_write);

    double readEnergyPj() const { return readPj; }
    double writeEnergyPj() const { return writePj; }
    double totalEnergyPj() const { return readPj + writePj; }

    void reset();

  private:
    EnergyParams params;
    double readPj = 0.0;
    double writePj = 0.0;
};

} // namespace hoopnvm

#endif // HOOPNVM_NVM_ENERGY_MODEL_HH
