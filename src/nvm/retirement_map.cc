#include "nvm/retirement_map.hh"

#include <cstring>

#include "common/crc32.hh"
#include "common/logging.hh"
#include "nvm/nvm_device.hh"

namespace hoopnvm
{

namespace
{

/** Fixed slot header preceding the bitmap words. */
struct SlotHeader
{
    std::uint64_t magic;
    std::uint32_t crc;
    std::uint32_t pad;
    std::uint64_t seq;
};
static_assert(sizeof(SlotHeader) == 24, "retirement slot header ABI");

} // namespace

std::uint64_t
RetirementMap::areaBytes(std::uint64_t entries)
{
    const std::uint64_t words = (entries + 63) / 64;
    const std::uint64_t slot =
        alignUp(sizeof(SlotHeader) + words * sizeof(std::uint64_t),
                kCacheLineSize);
    return 2 * slot;
}

void
RetirementMap::attach(NvmDevice &nvm, Addr base, std::uint64_t entries)
{
    HOOP_ASSERT(entries > 0, "empty retirement map");
    nvm_ = &nvm;
    base_ = base;
    entries_ = entries;
    seq_ = 0;
    nextSlot_ = 0;
    retired_ = 0;
    bits_.assign((entries + 63) / 64, 0);
}

Addr
RetirementMap::slotAddr(unsigned which) const
{
    return base_ + which * (areaBytes(entries_) / 2);
}

bool
RetirementMap::isRetired(std::uint64_t idx) const
{
    HOOP_ASSERT(idx < entries_, "retirement index out of range");
    return (bits_[idx / 64] >> (idx % 64)) & 1;
}

void
RetirementMap::encode(std::vector<std::uint8_t> &out) const
{
    const std::uint64_t payload = bits_.size() * sizeof(std::uint64_t);
    out.assign(sizeof(SlotHeader) + payload, 0);
    SlotHeader h;
    h.magic = kMagic;
    h.crc = 0;
    h.pad = 0;
    h.seq = seq_;
    std::memcpy(out.data() + sizeof(SlotHeader), bits_.data(), payload);
    h.crc = crc32c(&h.seq, sizeof(h.seq));
    h.crc = crc32c(out.data() + sizeof(SlotHeader), payload, h.crc);
    std::memcpy(out.data(), &h, sizeof(h));
}

Tick
RetirementMap::persistRetire(std::uint64_t idx, Tick now)
{
    HOOP_ASSERT(attached(), "retirement map not attached");
    HOOP_ASSERT(idx < entries_, "retirement index out of range");
    if (isRetired(idx))
        return now;
    bits_[idx / 64] |= 1ULL << (idx % 64);
    ++retired_;
    ++seq_;
    std::vector<std::uint8_t> img;
    encode(img);
    const Tick done =
        nvm_->write(now, slotAddr(nextSlot_), img.data(), img.size());
    nextSlot_ ^= 1;
    return done;
}

std::uint64_t
RetirementMap::loadDurable()
{
    HOOP_ASSERT(attached(), "retirement map not attached");
    const std::uint64_t payload = bits_.size() * sizeof(std::uint64_t);
    std::vector<std::uint8_t> img(sizeof(SlotHeader) + payload);
    bool any = false;
    unsigned best_slot = 0;
    std::uint64_t best_seq = 0;
    std::vector<std::uint64_t> best(bits_.size(), 0);
    for (unsigned s = 0; s < 2; ++s) {
        nvm_->peek(slotAddr(s), img.data(), img.size());
        SlotHeader h;
        std::memcpy(&h, img.data(), sizeof(h));
        if (h.magic != kMagic)
            continue;
        std::uint32_t crc = crc32c(&h.seq, sizeof(h.seq));
        crc = crc32c(img.data() + sizeof(SlotHeader), payload, crc);
        if (crc != h.crc)
            continue; // torn or corrupt slot: the other one stands
        if (!any || h.seq > best_seq) {
            any = true;
            best_slot = s;
            best_seq = h.seq;
            std::memcpy(best.data(), img.data() + sizeof(SlotHeader),
                        payload);
        }
    }
    bits_ = best;
    seq_ = any ? best_seq : 0;
    // Resume alternation away from the adopted slot so the next update
    // overwrites the stale (or torn) buffer, never the good one.
    nextSlot_ = any ? (best_slot ^ 1u) : 0;
    retired_ = 0;
    for (std::uint64_t w : bits_)
        retired_ += static_cast<std::uint64_t>(__builtin_popcountll(w));
    return retired_;
}

void
RetirementMap::persistUntimed()
{
    HOOP_ASSERT(attached(), "retirement map not attached");
    std::vector<std::uint8_t> img;
    for (unsigned s = 0; s < 2; ++s) {
        ++seq_;
        encode(img);
        nvm_->poke(slotAddr(s), img.data(), img.size());
    }
    nextSlot_ = 0; // slot 1 holds the newest image; overwrite 0 next

}

} // namespace hoopnvm
