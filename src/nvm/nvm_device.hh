/**
 * @file
 * Byte-addressable NVM device model.
 *
 * The device is both *functional* (it stores real bytes, sparsely backed
 * so a 512 GB simulated capacity costs only what is touched) and *timed*
 * (each accounted access reserves the channel, so background traffic such
 * as garbage collection or asynchronous log checkpointing contends with
 * foreground fills exactly as it would on real hardware).
 *
 * Timing model: an access starting at time `now` begins transferring at
 * `start = max(now, channel_free)`; the channel is occupied for the
 * transfer time (bytes / bandwidth) and the access completes at
 * `start + device_latency + transfer`. Device latency is pipelined, so
 * multiple outstanding accesses overlap their latencies but serialize on
 * channel bandwidth — the behaviour the recovery experiment (Fig. 11)
 * depends on.
 *
 * Accounting discipline: read()/write() move bytes *and* charge
 * time/energy/traffic. peek()/poke() move bytes silently and exist for
 * test verification and pre-simulation state setup only.
 *
 * Fault injection: every device owns a FaultModel (disabled by
 * default). Timed writes register with it so a crash can tear the
 * in-flight suffix at 8-byte word granularity, and every byte leaving
 * the device through peek()/read() passes through its scheduled
 * media-fault filter (see fault_model.hh).
 */

#ifndef HOOPNVM_NVM_NVM_DEVICE_HH
#define HOOPNVM_NVM_NVM_DEVICE_HH

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>

#include "common/types.hh"
#include "nvm/energy_model.hh"
#include "nvm/fault_model.hh"
#include "nvm/nvm_timing.hh"
#include "nvm/write_observer.hh"
#include "stats/stat_set.hh"

namespace hoopnvm
{

/** Sparse, timed, byte-addressable non-volatile memory device. */
class NvmDevice
{
  public:
    /**
     * @param capacity Total device capacity in bytes.
     * @param timing   Latency and bandwidth parameters.
     * @param energy   Per-bit energy parameters.
     */
    NvmDevice(std::uint64_t capacity, NvmTiming timing,
              EnergyParams energy = EnergyParams{});

    /**
     * Timed read: copies bytes out and returns the completion tick.
     *
     * When a read-retry policy is configured (setReadRetryPolicy) and
     * media faults are scheduled, the read is ECC-filtered: correctable
     * words are delivered clean (charging the per-word correction
     * surcharge), an uncorrectable first attempt is retried up to the
     * bounded attempt budget with modelled backoff (each retry
     * re-occupies the channel), and a read that stays uncorrectable
     * is delivered as-is with @p rf reporting the damage — the caller's
     * CRC machinery sees a structured ReadFault instead of silent
     * corruption. A null @p rf discards the report.
     */
    Tick read(Tick now, Addr addr, void *buf, std::size_t len,
              ReadFaultInfo *rf = nullptr);

    /** Timed write: copies bytes in and returns the completion tick. */
    Tick write(Tick now, Addr addr, const void *buf, std::size_t len);

    /**
     * Timed write that stores all @p len bytes but charges
     * time/energy/traffic for only @p accounted of them. Models
     * appends into shared structures (e.g. commit records packed into
     * address slices) whose full slot the simulator materializes but
     * whose incremental cost is smaller. The stored bytes still flow
     * through the fault model, so the append can tear on crash.
     */
    Tick write(Tick now, Addr addr, const void *buf, std::size_t len,
               std::size_t accounted);

    /**
     * Timed write without data movement, for modelled traffic whose
     * payload the functional state does not need (e.g. log metadata
     * padding). Charges time, energy and traffic only.
     */
    Tick writeAccounting(Tick now, std::size_t len);

    /** Timed read without data movement (see writeAccounting). */
    Tick readAccounting(Tick now, std::size_t len);

    /** Untimed read for verification / recovery replay inspection. */
    void peek(Addr addr, void *buf, std::size_t len) const;

    /** Untimed write for pre-simulation state setup. */
    void poke(Addr addr, const void *buf, std::size_t len);

    /** Untimed 8-byte convenience peek. */
    std::uint64_t peekWord(Addr addr) const;

    /** Untimed 8-byte convenience poke. */
    void pokeWord(Addr addr, std::uint64_t value);

    std::uint64_t capacity() const { return capacity_; }
    const NvmTiming &timing() const { return timing_; }
    void setTiming(const NvmTiming &t) { timing_ = t; }

    std::uint64_t bytesRead() const { return bytesRead_; }
    std::uint64_t bytesWritten() const { return bytesWritten_; }
    std::uint64_t readAccesses() const { return readAccesses_; }
    std::uint64_t writeAccesses() const { return writeAccesses_; }
    const EnergyModel &energy() const { return energy_; }

    /** First tick at which the channel is free. */
    Tick channelFree() const { return channelFree_; }

    /**
     * Drain fence: returns the earliest tick by which every write
     * issued so far is durable on media — `max(now, channel_free +
     * write_latency)` — and *holds the channel* until that bound, so
     * accesses issued afterwards at earlier core clocks queue behind
     * the drain instead of slipping into the window. Controllers use
     * this for log truncation / GC watermark barriers; pair it with
     * `faults().settleUpTo(bound)` to retire scheduled media faults
     * up to the same point.
     */
    Tick drainFence(Tick now);

    /** Ticks the channel spent occupied (transfer + bank busy). */
    std::uint64_t channelBusyTicks() const { return channelBusyTicks_; }

    /** Ticks accesses spent queued behind a busy channel. */
    std::uint64_t channelWaitTicks() const { return channelWaitTicks_; }

    /** Drain fences issued since the last counter reset. */
    std::uint64_t drainFences() const { return drainFences_; }

    /** Reset traffic/energy counters (not the stored bytes). */
    void resetCounters();

    /** Drop all stored bytes and counters (fresh device). */
    void clear();

    // ---- Fault injection ----

    /** The device's fault injector (disabled until configured). */
    FaultModel &faults() { return faults_; }
    const FaultModel &faults() const { return faults_; }

    /**
     * Power failure at @p tick: tear every write still in flight per
     * the fault model (no-op unless torn writes were enabled).
     */
    void applyCrashFaults(Tick tick);

    /**
     * Attach an observer of timed writes, durability fences and
     * crashes (nullptr detaches). Used by the persistency-ordering
     * analyzer; accounting-only traffic and untimed peek/poke are not
     * reported (they carry no durability obligation).
     */
    void setWriteObserver(NvmWriteObserver *obs);

    // ---- Media tolerance (runtime fault-tolerance subsystem) ----

    /**
     * Configure the timed-read retry policy: up to @p max_retries
     * re-reads after an uncorrectable attempt, each adding
     * @p backoff of modelled delay before re-occupying the channel,
     * plus @p ecc_cost of latency surcharge per ECC-corrected word.
     * All zero by default (reads never retry, corrections are free) —
     * the pre-subsystem behaviour.
     */
    void
    setReadRetryPolicy(unsigned max_retries, Tick backoff, Tick ecc_cost)
    {
        readRetryMax_ = max_retries;
        readRetryBackoff_ = backoff;
        eccCorrectCost_ = ecc_cost;
    }

    /** Retry attempts spent by timed reads since the last reset. */
    std::uint64_t readRetries() const { return readRetries_; }

    /** Timed reads that stayed uncorrectable after the retry budget. */
    std::uint64_t uncorrectableReads() const { return uncorrectableReads_; }

  private:
    static constexpr std::uint64_t kPageBytes = 4096;
    using Page = std::array<std::uint8_t, kPageBytes>;

    /**
     * Direct-mapped cache of page-table resolutions, sized so the hot
     * working set of a bench cell (home lines, OOP block, log head)
     * hits without a hash lookup. Entries store page_index + 1 so a
     * zero-filled cache is all-empty. The cached Page pointers stay
     * valid across page-table rehashes because pages are owned by
     * unique_ptr (the map moves the owner, not the page).
     */
    static constexpr std::size_t kPageCacheSlots = 256;

    /** Backing page for @p addr, created zero-filled on demand. */
    Page &pageFor(Addr addr);

    /** Backing page for @p addr if it exists, else nullptr. */
    const Page *pageIfPresent(Addr addr) const;

    /** Drop every cached page resolution. */
    void flushPageCache() const;

    /** peek() without the media-fault filter (pre-image capture). */
    void peekRaw(Addr addr, void *buf, std::size_t len) const;

    /** Common channel-reservation timing for one access. */
    Tick reserve(Tick now, std::size_t len, bool is_write);

    std::uint64_t capacity_;
    NvmTiming timing_;
    EnergyModel energy_;
    FaultModel faults_;
    std::unordered_map<std::uint64_t, std::unique_ptr<Page>> pages;

    // mutable: peek() is logically const but warms the resolution
    // cache. The device is owned by a single simulated System, so
    // there is no concurrent access to guard.
    mutable std::array<std::uint64_t, kPageCacheSlots> cachedPageIdx_{};
    mutable std::array<Page *, kPageCacheSlots> cachedPage_{};

    NvmWriteObserver *observer_ = nullptr;
    Tick channelFree_ = 0;
    std::uint64_t channelBusyTicks_ = 0;
    std::uint64_t channelWaitTicks_ = 0;
    std::uint64_t drainFences_ = 0;
    std::uint64_t bytesRead_ = 0;
    std::uint64_t bytesWritten_ = 0;
    std::uint64_t readAccesses_ = 0;
    std::uint64_t writeAccesses_ = 0;

    unsigned readRetryMax_ = 0;
    Tick readRetryBackoff_ = 0;
    Tick eccCorrectCost_ = 0;
    std::uint64_t readRetries_ = 0;
    std::uint64_t uncorrectableReads_ = 0;
};

} // namespace hoopnvm

#endif // HOOPNVM_NVM_NVM_DEVICE_HH
