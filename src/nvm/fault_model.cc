#include "nvm/fault_model.hh"

#include <algorithm>

#include "common/hash.hh"
#include "common/logging.hh"

namespace hoopnvm
{

namespace
{

/** Domain separators so the hash uses never correlate. */
constexpr std::uint64_t kTearSalt = 0x7465617244534c54ULL;
constexpr std::uint64_t kFaultySalt = 0x6d65646961464c54ULL;
constexpr std::uint64_t kBitSalt = 0x62697470636b5354ULL;
constexpr std::uint64_t kNbitsSalt = 0x6e626974636e7453ULL;
constexpr std::uint64_t kTransientSalt = 0x7472616e73466c54ULL;

/** Odd multiplier decorrelating the extra per-word bit picks. */
constexpr std::uint64_t kGolden = 0x9e3779b97f4a7c15ULL;

/** Map a 64-bit hash to a uniform double in [0, 1). */
double
hashToUnit(std::uint64_t h)
{
    return static_cast<double>(h >> 11) * 0x1.0p-53;
}

} // namespace

void
FaultModel::setTornWrites(bool on)
{
    tornWrites_ = on;
    if (!on)
        pending_.clear();
}

void
FaultModel::addMediaFault(Addr begin, Addr end, MediaFaultKind kind,
                          double word_probability,
                          unsigned max_bits_per_word)
{
    HOOP_ASSERT(begin < end, "empty media-fault range");
    HOOP_ASSERT(word_probability >= 0.0 && word_probability <= 1.0,
                "media-fault probability outside [0, 1]");
    HOOP_ASSERT(max_bits_per_word >= 1 && max_bits_per_word <= 64,
                "per-word fault bit budget outside [1, 64]");
    ranges_.push_back(
        {begin, end, kind, word_probability, max_bits_per_word});
}

void
FaultModel::reset()
{
    pending_.clear();
    ranges_.clear();
    nextSerial_ = 0;
    writesTorn_ = 0;
    wordsTorn_ = 0;
    wordsCorrupted_ = 0;
    wordsEccCorrected_ = 0;
    wordsTransientCleared_ = 0;
    wordsUncorrectable_ = 0;
}

void
FaultModel::noteWrite(Addr addr, const std::uint8_t *preimage,
                      std::size_t len, Tick completion, Tick now)
{
    if (!tornWrites_)
        return;
    // Completed writes can no longer tear; keep the in-flight window
    // small. The channel completes writes in issue order, so the
    // completed entries form a prefix of the deque.
    while (!pending_.empty() && pending_.front().completion <= now)
        pending_.pop_front();
    PendingWrite w;
    w.addr = addr;
    w.completion = completion;
    w.serial = nextSerial_++;
    w.preimage.assign(preimage, preimage + len);
    pending_.push_back(std::move(w));
}

bool
FaultModel::wordPersists(std::uint64_t serial, std::uint64_t w) const
{
    // Nested mix keeps (serial, w) pairs collision-free: a linear
    // combination like serial*K+w would alias word K of one write
    // with word 0 of the next, correlating their tear decisions.
    return mixHash(mixHash(seed_ ^ kTearSalt ^ serial) ^ w) & 1;
}

FaultModel::WordFault
FaultModel::classifyWord(Addr word) const
{
    WordFault f;
    const std::uint64_t coin = mixHash(seed_ ^ kFaultySalt ^ word);
    for (const MediaFaultRange &r : ranges_) {
        // The range covers the word when their byte windows overlap
        // (a word straddling a range edge still counts; the per-bit
        // clamp in corruptWord confines the damage to the range).
        if (word + kWordSize <= r.begin || word >= r.end)
            continue;
        if (hashToUnit(coin) >= r.wordProbability)
            continue;
        f.faulty = true;
        f.kind = r.kind;
        f.range = &r;
        f.nbits = 1;
        if (r.maxBitsPerWord > 1) {
            f.nbits += static_cast<unsigned>(
                mixHash(seed_ ^ kNbitsSalt ^ word) %
                r.maxBitsPerWord);
        }
        return f; // first scheduled covering range wins
    }
    return f;
}

unsigned
FaultModel::transientClearAttempt(Addr word) const
{
    return 1 + static_cast<unsigned>(
                   mixHash(seed_ ^ kTransientSalt ^ word) %
                   transientAttempts_);
}

unsigned
FaultModel::corruptWord(Addr word, const WordFault &f, Addr read_begin,
                        Addr read_end, std::uint8_t *buf) const
{
    // Bit 0 keeps the classic single-bit formula so single-bit fault
    // schedules reproduce the exact pre-ECC corruption patterns; extra
    // bits are decorrelated re-mixes of the same per-word base hash.
    const std::uint64_t base = mixHash(seed_ ^ kBitSalt ^ word);
    std::uint64_t chosen = 0; // bitmask of already-picked bit indices
    unsigned picked = 0;
    unsigned applied = 0;
    for (std::uint64_t probe = 0; picked < f.nbits && probe < 128;
         ++probe) {
        const unsigned bit = static_cast<unsigned>(
            (probe == 0 ? base : mixHash(base ^ (probe * kGolden))) &
            63);
        if (chosen & (1ULL << bit))
            continue;
        chosen |= 1ULL << bit;
        ++picked;
        const Addr byte = word + bit / 8;
        if (byte < read_begin || byte >= read_end ||
            byte < f.range->begin || byte >= f.range->end) {
            continue; // affected byte outside this read/range
        }
        ++applied;
        if (!buf)
            continue; // dry run: count applicable bits only
        std::uint8_t &b = buf[byte - read_begin];
        const std::uint8_t mask =
            static_cast<std::uint8_t>(1u << (bit % 8));
        switch (f.kind) {
          case MediaFaultKind::BitFlip:
            b ^= mask;
            break;
          case MediaFaultKind::StuckAtZero:
            b &= static_cast<std::uint8_t>(~mask);
            break;
          case MediaFaultKind::StuckAtOne:
            b |= mask;
            break;
        }
    }
    return applied;
}

void
FaultModel::filterRead(Addr addr, std::uint8_t *buf, std::size_t len,
                       unsigned attempt, ReadFaultInfo *rf) const
{
    if (ranges_.empty())
        return;
    const Addr end = addr + len;
    for (Addr word = alignDown(addr, kWordSize); word < end;
         word += kWordSize) {
        const WordFault f = classifyWord(word);
        if (!f.faulty)
            continue;
        // ECC corrects small faults in-line: delivered clean. Only
        // words whose damage would actually land in this read count
        // as corrections (a clamped-away fault costs nothing).
        if (eccBits_ > 0 && f.nbits <= eccBits_) {
            if (corruptWord(word, f, addr, end, nullptr) > 0) {
                ++wordsEccCorrected_;
                if (rf)
                    ++rf->correctedWords;
            }
            continue;
        }
        // Transient (read-disturb) BitFlips clear from a seeded
        // attempt onwards; stuck-at faults never do.
        if (f.kind == MediaFaultKind::BitFlip &&
            transientAttempts_ > 0) {
            if (attempt >= transientClearAttempt(word)) {
                if (corruptWord(word, f, addr, end, nullptr) > 0)
                    ++wordsTransientCleared_;
                continue;
            }
            if (corruptWord(word, f, addr, end, buf) > 0) {
                ++wordsCorrupted_;
                if (rf)
                    ++rf->transientWords;
            }
            continue;
        }
        // Uncorrectable: delivered corrupt.
        if (corruptWord(word, f, addr, end, buf) > 0) {
            ++wordsCorrupted_;
            ++wordsUncorrectable_;
            if (rf) {
                ++rf->uncorrectableWords;
                if (rf->firstUncorrectable == kInvalidAddr)
                    rf->firstUncorrectable = word;
            }
        }
    }
}

FaultSeverity
FaultModel::classifySeverity(Addr word) const
{
    const WordFault f = classifyWord(alignDown(word, kWordSize));
    if (!f.faulty)
        return FaultSeverity::Clean;
    if (eccBits_ > 0 && f.nbits <= eccBits_)
        return FaultSeverity::Correctable;
    if (f.kind == MediaFaultKind::BitFlip && transientAttempts_ > 0)
        return FaultSeverity::Transient;
    return FaultSeverity::Uncorrectable;
}

bool
FaultModel::uncorrectableInRange(Addr addr, std::size_t len) const
{
    if (ranges_.empty())
        return false;
    const Addr end = addr + len;
    for (Addr word = alignDown(addr, kWordSize); word < end;
         word += kWordSize) {
        if (classifySeverity(word) == FaultSeverity::Uncorrectable)
            return true;
    }
    return false;
}

bool
FaultModel::mediaFaultyRange(Addr addr, std::size_t len) const
{
    const Addr end = addr + len;
    for (const MediaFaultRange &r : ranges_) {
        if (r.wordProbability <= 0.0)
            continue;
        const Addr lo = std::max(addr, r.begin);
        const Addr hi = std::min(end, r.end);
        if (lo >= hi)
            continue;
        for (Addr word = alignDown(lo, kWordSize); word < hi;
             word += kWordSize) {
            if (hashToUnit(mixHash(seed_ ^ kFaultySalt ^ word)) <
                r.wordProbability) {
                return true;
            }
        }
    }
    return false;
}

} // namespace hoopnvm
