#include "nvm/fault_model.hh"

#include <algorithm>

#include "common/hash.hh"
#include "common/logging.hh"

namespace hoopnvm
{

namespace
{

/** Domain separators so the three hash uses never correlate. */
constexpr std::uint64_t kTearSalt = 0x7465617244534c54ULL;
constexpr std::uint64_t kFaultySalt = 0x6d65646961464c54ULL;
constexpr std::uint64_t kBitSalt = 0x62697470636b5354ULL;

/** Map a 64-bit hash to a uniform double in [0, 1). */
double
hashToUnit(std::uint64_t h)
{
    return static_cast<double>(h >> 11) * 0x1.0p-53;
}

} // namespace

void
FaultModel::setTornWrites(bool on)
{
    tornWrites_ = on;
    if (!on)
        pending_.clear();
}

void
FaultModel::addMediaFault(Addr begin, Addr end, MediaFaultKind kind,
                          double word_probability)
{
    HOOP_ASSERT(begin < end, "empty media-fault range");
    HOOP_ASSERT(word_probability >= 0.0 && word_probability <= 1.0,
                "media-fault probability outside [0, 1]");
    ranges_.push_back({begin, end, kind, word_probability});
}

void
FaultModel::reset()
{
    pending_.clear();
    ranges_.clear();
    nextSerial_ = 0;
    writesTorn_ = 0;
    wordsTorn_ = 0;
    wordsCorrupted_ = 0;
}

void
FaultModel::noteWrite(Addr addr, const std::uint8_t *preimage,
                      std::size_t len, Tick completion, Tick now)
{
    if (!tornWrites_)
        return;
    // Completed writes can no longer tear; keep the in-flight window
    // small. The channel completes writes in issue order, so the
    // completed entries form a prefix of the deque.
    while (!pending_.empty() && pending_.front().completion <= now)
        pending_.pop_front();
    PendingWrite w;
    w.addr = addr;
    w.completion = completion;
    w.serial = nextSerial_++;
    w.preimage.assign(preimage, preimage + len);
    pending_.push_back(std::move(w));
}

bool
FaultModel::wordPersists(std::uint64_t serial, std::uint64_t w) const
{
    // Nested mix keeps (serial, w) pairs collision-free: a linear
    // combination like serial*K+w would alias word K of one write
    // with word 0 of the next, correlating their tear decisions.
    return mixHash(mixHash(seed_ ^ kTearSalt ^ serial) ^ w) & 1;
}

void
FaultModel::corruptRead(Addr addr, std::uint8_t *buf,
                        std::size_t len) const
{
    if (ranges_.empty())
        return;
    const Addr end = addr + len;
    for (const MediaFaultRange &r : ranges_) {
        const Addr lo = std::max(addr, r.begin);
        const Addr hi = std::min(end, r.end);
        if (lo >= hi)
            continue;
        for (Addr word = alignDown(lo, kWordSize); word < hi;
             word += kWordSize) {
            const std::uint64_t h =
                mixHash(seed_ ^ kFaultySalt ^ word);
            if (hashToUnit(h) >= r.wordProbability)
                continue;
            const unsigned bit = static_cast<unsigned>(
                mixHash(seed_ ^ kBitSalt ^ word) & 63);
            const Addr byte = word + bit / 8;
            if (byte < addr || byte >= end || byte < r.begin ||
                byte >= r.end) {
                continue; // affected byte outside this read/range
            }
            std::uint8_t &b = buf[byte - addr];
            const std::uint8_t mask =
                static_cast<std::uint8_t>(1u << (bit % 8));
            switch (r.kind) {
              case MediaFaultKind::BitFlip:
                b ^= mask;
                break;
              case MediaFaultKind::StuckAtZero:
                b &= static_cast<std::uint8_t>(~mask);
                break;
              case MediaFaultKind::StuckAtOne:
                b |= mask;
                break;
            }
            ++wordsCorrupted_;
        }
    }
}

bool
FaultModel::mediaFaultyRange(Addr addr, std::size_t len) const
{
    const Addr end = addr + len;
    for (const MediaFaultRange &r : ranges_) {
        if (r.wordProbability <= 0.0)
            continue;
        const Addr lo = std::max(addr, r.begin);
        const Addr hi = std::min(end, r.end);
        if (lo >= hi)
            continue;
        for (Addr word = alignDown(lo, kWordSize); word < hi;
             word += kWordSize) {
            if (hashToUnit(mixHash(seed_ ^ kFaultySalt ^ word)) <
                r.wordProbability) {
                return true;
            }
        }
    }
    return false;
}

} // namespace hoopnvm
